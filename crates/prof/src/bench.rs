//! Continuous benchmark regression: diffing, gating, history.
//!
//! Operates on `BENCH_sim.json` documents as loosely-typed JSON values,
//! so a baseline produced by an older build (fewer fields) still diffs
//! against today's — a metric missing on either side is reported but
//! never gated on. Tolerances are *noise-aware* in two layers: each
//! rule has a floor tolerance (10% by default, matching the acceptance
//! bar "fail on >10% regression"), and each document may record the
//! relative spread it observed across its own timing repetitions (see
//! [`MetricRule::noise_path`]); the gate widens the floor to the larger
//! spread of the two runs being compared, capped at
//! [`MAX_TOLERANCE`], so a comparison involving a run taken on a loaded
//! machine does not produce a spurious failure.

use serde_json::Value;

/// How one benchmark metric is judged.
#[derive(Debug, Clone, Copy)]
pub struct MetricRule {
    /// Dot-separated path into the `BENCH_sim.json` document.
    pub path: &'static str,
    /// True when larger is better (throughput, speedup).
    pub higher_is_better: bool,
    /// Relative change tolerated before the gate fails (0.10 = 10%).
    pub tolerance: f64,
    /// Dot-separated path to this metric's recorded measurement noise —
    /// the relative spread (`max/min - 1`) the producing run observed
    /// across its own timing repetitions. When present in either
    /// document, the effective tolerance is widened to the larger
    /// spread (capped at [`MAX_TOLERANCE`]). `None`, or a path absent
    /// from both documents, leaves the floor tolerance in force.
    pub noise_path: Option<&'static str>,
}

/// Ceiling on noise-widened tolerance: a run whose own repetitions
/// spread by more than this is measuring machine load, not the code,
/// but the gate must still catch a catastrophic regression.
pub const MAX_TOLERANCE: f64 = 0.50;

/// The gated metrics of `BENCH_sim.json`: cold/warm sweep throughput and
/// the fast-fidelity speedups.
pub const BENCH_RULES: &[MetricRule] = &[
    MetricRule {
        path: "sweep.cold_cells_per_s",
        higher_is_better: true,
        tolerance: 0.10,
        noise_path: Some("sweep.cold_spread"),
    },
    MetricRule {
        path: "sweep.warm_cells_per_s",
        higher_is_better: true,
        tolerance: 0.10,
        noise_path: Some("sweep.warm_spread"),
    },
    MetricRule {
        path: "fidelity.speedup",
        higher_is_better: true,
        tolerance: 0.10,
        noise_path: Some("fidelity.speedup_spread"),
    },
    MetricRule {
        path: "fidelity_full.speedup",
        higher_is_better: true,
        tolerance: 0.10,
        noise_path: Some("fidelity_full.speedup_spread"),
    },
];

/// The gated metrics of `BENCH_exec.json` (the native execution-backend
/// acceptance cell): absolute throughput of both backends and the
/// native-over-interpreter speedup. Each metric is noise-widened by the
/// relative spread its producing run recorded across repetitions — the
/// interpreter on a loaded single-core host can spread by well over the
/// floor tolerance.
pub const EXEC_RULES: &[MetricRule] = &[
    MetricRule {
        path: "interpreter.points_per_s",
        higher_is_better: true,
        tolerance: 0.10,
        noise_path: Some("interpreter.spread"),
    },
    MetricRule {
        path: "native.points_per_s",
        higher_is_better: true,
        tolerance: 0.10,
        noise_path: Some("native.spread"),
    },
    MetricRule {
        path: "speedup",
        higher_is_better: true,
        tolerance: 0.10,
        noise_path: Some("speedup_spread"),
    },
];

/// Pick the rule set for a bench document by its distinguishing key:
/// `BENCH_exec.json` documents carry an `exec` object (the measured
/// cell's identity), `BENCH_sim.json` documents do not. Keying on the
/// document rather than the filename lets `bricks prof diff/gate/history`
/// accept either artifact without a mode flag.
pub fn rules_for(doc: &Value) -> &'static [MetricRule] {
    if doc.get("exec").is_some() {
        EXEC_RULES
    } else {
        BENCH_RULES
    }
}

/// One metric's comparison across two documents.
#[derive(Debug, Clone)]
pub struct MetricDelta {
    /// Rule path.
    pub path: String,
    /// Baseline value (`None` when the path is absent there).
    pub base: Option<f64>,
    /// New value (`None` when absent).
    pub new: Option<f64>,
    /// `new / base` when both exist and base is non-zero.
    pub ratio: Option<f64>,
    /// Effective tolerance this metric was judged under: the rule's
    /// floor, widened to the larger recorded measurement noise of the
    /// two runs (capped at [`MAX_TOLERANCE`]).
    pub tolerance: f64,
    /// True when the change exceeds tolerance in the bad direction.
    pub regression: bool,
}

/// Resolve a dot-separated path to a number inside a JSON document.
pub fn lookup(doc: &Value, path: &str) -> Option<f64> {
    let mut v = doc;
    for seg in path.split('.') {
        v = v.get(seg)?;
    }
    v.as_f64()
}

/// Compare `new` against `base` under `rules` (use [`BENCH_RULES`] for
/// `BENCH_sim.json`). Metrics missing on either side never count as
/// regressions.
pub fn diff_bench(base: &Value, new: &Value, rules: &[MetricRule]) -> Vec<MetricDelta> {
    rules
        .iter()
        .map(|r| {
            let b = lookup(base, r.path);
            let n = lookup(new, r.path);
            let ratio = match (b, n) {
                (Some(b), Some(n)) if b != 0.0 => Some(n / b),
                _ => None,
            };
            let noise = r
                .noise_path
                .into_iter()
                .flat_map(|p| [lookup(base, p), lookup(new, p)])
                .flatten()
                .fold(0.0f64, f64::max);
            let tolerance = r.tolerance.max(noise).min(MAX_TOLERANCE);
            let regression = ratio.is_some_and(|q| {
                if r.higher_is_better {
                    q < 1.0 - tolerance
                } else {
                    q > 1.0 + tolerance
                }
            });
            MetricDelta {
                path: r.path.to_string(),
                base: b,
                new: n,
                ratio,
                tolerance,
                regression,
            }
        })
        .collect()
}

/// The CI gate: `Err` listing every regressed metric, `Ok` otherwise.
pub fn gate(deltas: &[MetricDelta]) -> Result<(), String> {
    let bad: Vec<String> = deltas
        .iter()
        .filter(|d| d.regression)
        .map(|d| {
            format!(
                "{}: {:.4} -> {:.4} ({:+.1}% beyond the {:.0}% tolerance)",
                d.path,
                d.base.unwrap_or(f64::NAN),
                d.new.unwrap_or(f64::NAN),
                (d.ratio.unwrap_or(1.0) - 1.0) * 100.0,
                d.tolerance * 100.0
            )
        })
        .collect();
    if bad.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "benchmark regression gate failed on {} metric(s):\n  {}",
            bad.len(),
            bad.join("\n  ")
        ))
    }
}

/// Append one `BENCH_sim.json` document to a JSONL bench history file.
pub fn history_append(path: &std::path::Path, doc: &Value) -> Result<(), String> {
    use std::io::Write;
    let line = serde_json::to_string(doc).map_err(|e| e.to_string())?;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    writeln!(f, "{line}").map_err(|e| format!("cannot append {}: {e}", path.display()))
}

/// Load a bench history file (one JSON document per line; blank lines
/// skipped), oldest first.
pub fn history_load(path: &std::path::Path) -> Result<Vec<Value>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(
            serde_json::parse(line)
                .map_err(|e| format!("{}:{}: {}", path.display(), i + 1, e.0))?,
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_doc(cold: f64, warm: f64, speedup: f64) -> Value {
        serde_json::parse(&format!(
            r#"{{"schema": 2,
                 "sweep": {{"cold_cells_per_s": {cold}, "warm_cells_per_s": {warm}}},
                 "fidelity": {{"speedup": {speedup}}}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn lookup_walks_paths() {
        let d = bench_doc(10.0, 100.0, 8.0);
        assert_eq!(lookup(&d, "sweep.cold_cells_per_s"), Some(10.0));
        assert_eq!(lookup(&d, "fidelity.speedup"), Some(8.0));
        assert_eq!(lookup(&d, "fidelity_full.speedup"), None);
        assert_eq!(lookup(&d, "schema"), Some(2.0));
    }

    #[test]
    fn gate_fails_on_injected_20_percent_slowdown_and_passes_baseline() {
        let base = bench_doc(10.0, 100.0, 8.0);
        // identical run: no regression, missing fidelity_full is benign
        let same = diff_bench(&base, &base, BENCH_RULES);
        assert!(gate(&same).is_ok());
        // 20% cold-throughput slowdown: beyond the 10% tolerance
        let slow = bench_doc(8.0, 100.0, 8.0);
        let deltas = diff_bench(&base, &slow, BENCH_RULES);
        let err = gate(&deltas).unwrap_err();
        assert!(err.contains("sweep.cold_cells_per_s"), "{err}");
        assert!(!err.contains("warm_cells_per_s"), "{err}");
    }

    #[test]
    fn small_jitter_is_tolerated() {
        let base = bench_doc(10.0, 100.0, 8.0);
        let jitter = bench_doc(9.5, 95.0, 7.5);
        assert!(gate(&diff_bench(&base, &jitter, BENCH_RULES)).is_ok());
    }

    #[test]
    fn improvements_never_fail_the_gate() {
        let base = bench_doc(10.0, 100.0, 8.0);
        let faster = bench_doc(20.0, 250.0, 16.0);
        assert!(gate(&diff_bench(&base, &faster, BENCH_RULES)).is_ok());
    }

    fn exec_doc(interp: f64, native: f64, spread: f64) -> Value {
        serde_json::parse(&format!(
            r#"{{"schema": 1, "exec": {{"stencil": "7pt", "n": 512}},
                 "interpreter": {{"points_per_s": {interp}, "spread": 0.05}},
                 "native": {{"points_per_s": {native}, "spread": 0.05}},
                 "speedup": {r}, "speedup_spread": {spread}}}"#,
            r = native / interp
        ))
        .unwrap()
    }

    #[test]
    fn exec_docs_select_exec_rules_and_gate_on_native_throughput() {
        let base = exec_doc(60.0e6, 230.0e6, 0.05);
        assert_eq!(rules_for(&base)[0].path, "interpreter.points_per_s");
        assert_eq!(
            rules_for(&bench_doc(10.0, 100.0, 8.0))[0].path,
            "sweep.cold_cells_per_s"
        );
        // identical run passes
        assert!(gate(&diff_bench(&base, &base, rules_for(&base))).is_ok());
        // native backend regressing 20% fails on both throughput and speedup
        let slow = exec_doc(60.0e6, 184.0e6, 0.05);
        let err = gate(&diff_bench(&base, &slow, rules_for(&base))).unwrap_err();
        assert!(err.contains("native.points_per_s"), "{err}");
        // a run that recorded large interpreter spread widens, capped
        let noisy = exec_doc(56.0e6, 230.0e6, 1.8);
        let deltas = diff_bench(&base, &noisy, rules_for(&base));
        let sp = deltas.iter().find(|d| d.path == "speedup").unwrap();
        assert_eq!(sp.tolerance, MAX_TOLERANCE);
        assert!(gate(&deltas).is_ok());
    }

    fn noisy_doc(cold: f64, spread: f64) -> Value {
        serde_json::parse(&format!(
            r#"{{"sweep": {{"cold_cells_per_s": {cold}, "cold_spread": {spread},
                            "warm_cells_per_s": 100.0}},
                 "fidelity": {{"speedup": 8.0}}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn recorded_noise_widens_tolerance() {
        // 15% drop fails at the 10% floor without recorded noise...
        let base = bench_doc(10.0, 100.0, 8.0);
        let drop15 = bench_doc(8.5, 100.0, 8.0);
        assert!(gate(&diff_bench(&base, &drop15, BENCH_RULES)).is_err());
        // ...but passes when either run recorded a 20% spread across its
        // own repetitions: that change is within measurement noise
        let base = noisy_doc(10.0, 0.02);
        let drop15 = noisy_doc(8.5, 0.20);
        let deltas = diff_bench(&base, &drop15, BENCH_RULES);
        assert!(gate(&deltas).is_ok(), "{deltas:?}");
        assert_eq!(deltas[0].tolerance, 0.20);
        // an injected 20% slowdown still fails under modest noise
        let drop20 = noisy_doc(8.0, 0.05);
        assert!(gate(&diff_bench(&base, &drop20, BENCH_RULES)).is_err());
    }

    #[test]
    fn noise_widening_is_capped() {
        // a pathological 500% spread cannot disable the gate: tolerance
        // caps at MAX_TOLERANCE, so a 60% collapse still fails
        let base = noisy_doc(10.0, 0.02);
        let collapse = noisy_doc(4.0, 5.0);
        let deltas = diff_bench(&base, &collapse, BENCH_RULES);
        assert_eq!(deltas[0].tolerance, MAX_TOLERANCE);
        assert!(gate(&deltas).is_err());
    }

    #[test]
    fn history_round_trips() {
        let dir = std::env::temp_dir().join(format!("brick-prof-hist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("history.jsonl");
        let _ = std::fs::remove_file(&path);
        history_append(&path, &bench_doc(10.0, 100.0, 8.0)).unwrap();
        history_append(&path, &bench_doc(11.0, 105.0, 8.5)).unwrap();
        let h = history_load(&path).unwrap();
        assert_eq!(h.len(), 2);
        assert_eq!(lookup(&h[1], "sweep.cold_cells_per_s"), Some(11.0));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
