//! Hierarchical profile trees built from span captures.
//!
//! A raw span capture is schedule-dependent: with `--jobs 1` a sweep's
//! per-cell spans nest under the scheduler span on the calling thread,
//! while with `--jobs N` they are root spans on worker threads, and the
//! cell *indices* each worker happens to run vary with timing. The
//! profile tree removes both artifacts:
//!
//! * a root span named `label[i]` is re-parented under the unique span
//!   named exactly `label` (the scheduler span `brick_sweep::map_cells`
//!   opens on the calling thread);
//! * sibling spans merge by *normalized* name — every `[...]` segment
//!   becomes `[*]` — so `sweep.cells[0]` and `sweep.cells[63]` are one
//!   node with `count = 64`.
//!
//! The resulting structure (the set of name paths) is identical at any
//! jobs count, which `experiments/tests/prof_structure.rs` asserts
//! byte-for-byte. Timings remain exact sums of the underlying spans.

use brick_obs::SpanData;

/// One merged node of a profile tree.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileNode {
    /// Normalized span name ([`normalize_name`]).
    pub name: String,
    /// Span category of the first merged instance.
    pub cat: String,
    /// Merged span instances.
    pub count: u64,
    /// Total (inclusive) nanoseconds across instances.
    pub total_ns: u64,
    /// Self nanoseconds: total minus time inside child spans, saturating
    /// at zero when children ran concurrently on other threads.
    pub self_ns: u64,
    /// Bytes allocated on each instance's opening thread while open.
    pub alloc_bytes: u64,
    /// Child nodes, sorted by name.
    pub children: Vec<ProfileNode>,
}

/// A merged, schedule-invariant profile forest.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileTree {
    /// Root nodes, sorted by name.
    pub roots: Vec<ProfileNode>,
}

/// Normalize a span name for merging: the content of every `[...]`
/// segment becomes `*` (`sweep.cells[17]` → `sweep.cells[*]`).
pub fn normalize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut rest = name;
    while let Some(i) = rest.find('[') {
        out.push_str(&rest[..=i]);
        match rest[i + 1..].find(']') {
            Some(j) => {
                out.push('*');
                rest = &rest[i + 1 + j..];
            }
            None => {
                out.push_str(&rest[i + 1..]);
                return out;
            }
        }
    }
    out.push_str(rest);
    out
}

/// The scheduler label an indexed cell-span name refers to: `label[i]` →
/// `label`. Returns `None` for names not of that shape.
fn cell_label(name: &str) -> Option<&str> {
    let open = name.rfind('[')?;
    name.ends_with(']').then(|| &name[..open])
}

impl ProfileTree {
    /// Build the merged tree from a span capture (only closed spans with
    /// valid parent indices are expected — [`brick_obs::trace::spans_data`]
    /// and [`brick_obs::trace::parse_spans_jsonl`] both qualify).
    pub fn build(spans: &[SpanData]) -> ProfileTree {
        // Effective parent: as recorded, except worker-thread roots named
        // `label[i]` adopt the unique span named `label` as parent.
        let mut parent: Vec<Option<usize>> = spans.iter().map(|s| s.parent).collect();
        for (i, s) in spans.iter().enumerate() {
            if s.parent.is_some() {
                continue;
            }
            let Some(label) = cell_label(&s.name) else {
                continue;
            };
            let mut matches = spans.iter().enumerate().filter(|(_, p)| p.name == label);
            if let (Some((j, _)), None) = (matches.next(), matches.next()) {
                if j != i {
                    parent[i] = Some(j);
                }
            }
        }

        let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
        let mut roots: Vec<usize> = Vec::new();
        for (i, p) in parent.iter().enumerate() {
            match p {
                Some(j) if *j < spans.len() => children[*j].push(i),
                _ => roots.push(i),
            }
        }

        // Self time per original span against its *effective* children.
        let mut self_ns: Vec<u64> = spans.iter().map(|s| s.dur_ns).collect();
        for (i, kids) in children.iter().enumerate() {
            let child_total: u64 = kids.iter().map(|&k| spans[k].dur_ns).sum();
            self_ns[i] = spans[i].dur_ns.saturating_sub(child_total);
        }

        ProfileTree {
            roots: merge_level(spans, &children, &self_ns, &roots),
        }
    }

    /// First node (depth-first) whose normalized name equals `name`.
    pub fn find(&self, name: &str) -> Option<&ProfileNode> {
        fn walk<'a>(nodes: &'a [ProfileNode], name: &str) -> Option<&'a ProfileNode> {
            for n in nodes {
                if n.name == name {
                    return Some(n);
                }
                if let Some(hit) = walk(&n.children, name) {
                    return Some(hit);
                }
            }
            None
        }
        walk(&self.roots, name)
    }

    /// Visit every node depth-first.
    pub fn walk(&self, f: &mut impl FnMut(&ProfileNode)) {
        fn go(nodes: &[ProfileNode], f: &mut impl FnMut(&ProfileNode)) {
            for n in nodes {
                f(n);
                go(&n.children, f);
            }
        }
        go(&self.roots, f);
    }

    /// The tree's shape alone: one `;`-joined name path per line, in
    /// depth-first order. Identical strings ⇔ identical structure.
    pub fn structure_string(&self) -> String {
        let mut out = String::new();
        fn go(nodes: &[ProfileNode], prefix: &str, out: &mut String) {
            for n in nodes {
                let path = if prefix.is_empty() {
                    n.name.clone()
                } else {
                    format!("{prefix};{}", n.name)
                };
                out.push_str(&path);
                out.push('\n');
                go(&n.children, &path, out);
            }
        }
        go(&self.roots, "", &mut out);
        out
    }

    /// Folded-stack export (`path;to;node weight`), weighted by self-time
    /// in nanoseconds — directly consumable by flamegraph tooling. Nodes
    /// with zero self-time are omitted.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        fn go(nodes: &[ProfileNode], prefix: &str, out: &mut String) {
            for n in nodes {
                let path = if prefix.is_empty() {
                    n.name.clone()
                } else {
                    format!("{prefix};{}", n.name)
                };
                if n.self_ns > 0 {
                    out.push_str(&format!("{path} {}\n", n.self_ns));
                }
                go(&n.children, &path, out);
            }
        }
        go(&self.roots, "", &mut out);
        out
    }
}

/// Merge one sibling level: group span indices by normalized name, sum
/// the counters, and recurse into the concatenated child lists.
fn merge_level(
    spans: &[SpanData],
    children: &[Vec<usize>],
    self_ns: &[u64],
    level: &[usize],
) -> Vec<ProfileNode> {
    let mut groups: Vec<(String, Vec<usize>)> = Vec::new();
    for &i in level {
        let name = normalize_name(&spans[i].name);
        match groups.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => v.push(i),
            None => groups.push((name, vec![i])),
        }
    }
    groups.sort_by(|a, b| a.0.cmp(&b.0));
    groups
        .into_iter()
        .map(|(name, members)| {
            let kid_level: Vec<usize> = members
                .iter()
                .flat_map(|&i| children[i].iter().copied())
                .collect();
            ProfileNode {
                name,
                cat: spans[members[0]].cat.clone(),
                count: members.len() as u64,
                total_ns: members.iter().map(|&i| spans[i].dur_ns).sum(),
                self_ns: members.iter().map(|&i| self_ns[i]).sum(),
                alloc_bytes: members.iter().map(|&i| spans[i].alloc_bytes).sum(),
                children: merge_level(spans, children, self_ns, &kid_level),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::too_many_arguments)]
    fn span(
        name: &str,
        cat: &str,
        tid: u64,
        start_ns: u64,
        dur_ns: u64,
        parent: Option<usize>,
        depth: u32,
        alloc_bytes: u64,
    ) -> SpanData {
        SpanData {
            name: name.into(),
            cat: cat.into(),
            tid,
            start_ns,
            dur_ns,
            parent,
            depth,
            alloc_bytes,
        }
    }

    #[test]
    fn normalization() {
        assert_eq!(normalize_name("sweep.cells[17]"), "sweep.cells[*]");
        assert_eq!(normalize_name("a[1]b[2]"), "a[*]b[*]");
        assert_eq!(normalize_name("plain"), "plain");
        assert_eq!(normalize_name("sweep:64^3"), "sweep:64^3");
        assert_eq!(normalize_name("odd[unclosed"), "odd[unclosed");
    }

    #[test]
    fn serial_and_parallel_captures_share_structure() {
        // jobs=1: cells nest under the scheduler span on one thread.
        let serial = vec![
            span("sweep:8^3", "sweep", 1, 0, 100, None, 0, 10),
            span("work", "sched", 1, 5, 90, Some(0), 1, 0),
            span("work[0]", "cell", 1, 10, 30, Some(1), 2, 4),
            span("work[1]", "cell", 1, 50, 40, Some(1), 2, 6),
        ];
        // jobs=2: cells are worker-thread roots, indices swapped.
        let parallel = vec![
            span("sweep:8^3", "sweep", 1, 0, 70, None, 0, 10),
            span("work", "sched", 1, 5, 60, Some(0), 1, 0),
            span("work[1]", "cell", 2, 10, 40, None, 0, 6),
            span("work[0]", "cell", 3, 10, 30, None, 0, 4),
        ];
        let ts = ProfileTree::build(&serial);
        let tp = ProfileTree::build(&parallel);
        assert_eq!(ts.structure_string(), tp.structure_string());
        assert_eq!(
            ts.structure_string(),
            "sweep:8^3\nsweep:8^3;work\nsweep:8^3;work;work[*]\n"
        );
        let cells = tp.find("work[*]").unwrap();
        assert_eq!(cells.count, 2);
        assert_eq!(cells.total_ns, 70);
        assert_eq!(cells.alloc_bytes, 10);
        // parallel children exceeding the scheduler span saturate to 0 self
        let sched = tp.find("work").unwrap();
        assert_eq!(sched.self_ns, 0);
        // serial self-times are exact
        let sched_s = ts.find("work").unwrap();
        assert_eq!(sched_s.self_ns, 90 - 70);
    }

    #[test]
    fn reparenting_requires_a_unique_target() {
        // two spans named "work": the cell root stays a root
        let spans = vec![
            span("work", "sched", 1, 0, 50, None, 0, 0),
            span("work", "sched", 1, 60, 50, None, 0, 0),
            span("work[0]", "cell", 2, 5, 10, None, 0, 0),
        ];
        let t = ProfileTree::build(&spans);
        assert_eq!(t.roots.len(), 2, "{:?}", t.roots);
        assert!(t.roots.iter().any(|r| r.name == "work[*]"));
    }

    #[test]
    fn folded_weights_are_self_times() {
        let spans = vec![
            span("outer", "run", 1, 0, 100, None, 0, 0),
            span("inner", "run", 1, 10, 40, Some(0), 1, 0),
        ];
        let t = ProfileTree::build(&spans);
        let folded = t.folded();
        assert!(folded.contains("outer 60\n"), "{folded}");
        assert!(folded.contains("outer;inner 40\n"), "{folded}");
    }
}
