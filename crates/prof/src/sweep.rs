//! The `PROF_sweep.json` artifact: self-profile of one sweep run.
//!
//! Built from a span capture of a sweep (`experiments --prof`, or
//! `bricks prof sweep <spans.jsonl>`): total wall time from the sweep's
//! root span, per-phase aggregates with log-linear duration histograms,
//! the fraction of wall time attributed to named phases, and the top-N
//! hottest cells. Phases are the spans the runner opens with category
//! `"phase"` — `rooflines`, `lint-verify`, `compile`, `simulate`,
//! `score`, `cache-io` — which tile each cell's work, so at `--jobs 1`
//! the attributed fraction approaches 1 (the acceptance bar is ≥ 0.95 on
//! a cold 64³ sweep). At higher jobs counts phase time is summed across
//! workers and the fraction measures parallel work over wall time (it
//! may exceed 1).

use brick_obs::metrics::Histogram;
use brick_obs::SpanData;
use serde::{Deserialize, Serialize};

/// Schema tag of `PROF_sweep.json`.
pub const SWEEP_PROF_SCHEMA: &str = "brick-prof-sweep-v1";

/// Hot cells reported.
pub const TOP_CELLS: usize = 10;

/// Aggregate of one named phase.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseProfile {
    /// Phase name (normalized span name).
    pub name: String,
    /// Span instances merged.
    pub count: u64,
    /// Total nanoseconds across instances.
    pub total_ns: u64,
    /// Bytes allocated inside the phase's spans (opening threads).
    pub alloc_bytes: u64,
    /// `total_ns` over the sweep wall time.
    pub wall_frac: f64,
    /// Log-linear histogram of individual span durations, microseconds.
    pub dur_us: Histogram,
}

/// One hot cell (a `record`-category span).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HotCell {
    /// Cell name (`stencil/config/gpu/model`).
    pub name: String,
    /// Total nanoseconds spent in the cell.
    pub total_ns: u64,
    /// Bytes allocated while the cell ran.
    pub alloc_bytes: u64,
}

/// Self-profile of one sweep run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SweepProfile {
    /// Schema tag ([`SWEEP_PROF_SCHEMA`]).
    pub schema: String,
    /// Wall time of the sweep root span (`sweep:{n}^3`), nanoseconds.
    pub wall_ns: u64,
    /// Nanoseconds inside phase spans (summed across threads).
    pub attributed_ns: u64,
    /// `attributed_ns / wall_ns` (0 when no root span was captured).
    pub attributed_frac: f64,
    /// Bytes allocated inside phase spans.
    pub alloc_bytes: u64,
    /// Per-phase aggregates, largest total first.
    pub phases: Vec<PhaseProfile>,
    /// Top cells by total time, largest first.
    pub hot_cells: Vec<HotCell>,
}

impl SweepProfile {
    /// Build the profile from a span capture.
    pub fn from_spans(spans: &[SpanData]) -> SweepProfile {
        let wall_ns = spans
            .iter()
            .filter(|s| s.cat == "sweep" && s.name.starts_with("sweep:"))
            .map(|s| s.dur_ns)
            .max()
            .unwrap_or(0);

        let mut phases: Vec<PhaseProfile> = Vec::new();
        for s in spans.iter().filter(|s| s.cat == "phase") {
            let name = crate::tree::normalize_name(&s.name);
            let p = match phases.iter_mut().find(|p| p.name == name) {
                Some(p) => p,
                None => {
                    phases.push(PhaseProfile {
                        name,
                        ..PhaseProfile::default()
                    });
                    phases.last_mut().expect("just pushed")
                }
            };
            p.count += 1;
            p.total_ns += s.dur_ns;
            p.alloc_bytes += s.alloc_bytes;
            p.dur_us.record(s.dur_ns as f64 / 1e3);
        }
        let attributed_ns: u64 = phases.iter().map(|p| p.total_ns).sum();
        let alloc_bytes: u64 = phases.iter().map(|p| p.alloc_bytes).sum();
        for p in &mut phases {
            p.wall_frac = if wall_ns == 0 {
                0.0
            } else {
                p.total_ns as f64 / wall_ns as f64
            };
        }
        phases.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));

        let mut hot: Vec<HotCell> = Vec::new();
        for s in spans.iter().filter(|s| s.cat == "record") {
            match hot.iter_mut().find(|c| c.name == s.name) {
                Some(c) => {
                    c.total_ns += s.dur_ns;
                    c.alloc_bytes += s.alloc_bytes;
                }
                None => hot.push(HotCell {
                    name: s.name.clone(),
                    total_ns: s.dur_ns,
                    alloc_bytes: s.alloc_bytes,
                }),
            }
        }
        hot.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
        hot.truncate(TOP_CELLS);

        SweepProfile {
            schema: SWEEP_PROF_SCHEMA.into(),
            wall_ns,
            attributed_ns,
            attributed_frac: if wall_ns == 0 {
                0.0
            } else {
                attributed_ns as f64 / wall_ns as f64
            },
            alloc_bytes,
            phases,
            hot_cells: hot,
        }
    }

    /// Build the profile from the process's current span store.
    pub fn from_current() -> SweepProfile {
        SweepProfile::from_spans(&brick_obs::trace::spans_data())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, cat: &str, dur_ns: u64, alloc: u64) -> SpanData {
        SpanData {
            name: name.into(),
            cat: cat.into(),
            tid: 1,
            start_ns: 0,
            dur_ns,
            parent: None,
            depth: 0,
            alloc_bytes: alloc,
        }
    }

    #[test]
    fn phases_and_hot_cells_aggregate() {
        let spans = vec![
            span("sweep:16^3", "sweep", 1_000_000, 0),
            span("compile", "phase", 300_000, 64),
            span("compile", "phase", 200_000, 32),
            span("simulate", "phase", 450_000, 128),
            span("d3pt7/8x8/a100/cuda", "record", 700_000, 96),
            span("d3pt7/8x8/mi250x/hip", "record", 250_000, 48),
        ];
        let p = SweepProfile::from_spans(&spans);
        assert_eq!(p.schema, SWEEP_PROF_SCHEMA);
        assert_eq!(p.wall_ns, 1_000_000);
        assert_eq!(p.attributed_ns, 950_000);
        assert!((p.attributed_frac - 0.95).abs() < 1e-12);
        assert_eq!(p.alloc_bytes, 224);
        assert_eq!(p.phases[0].name, "compile");
        assert_eq!(p.phases[0].count, 2);
        assert_eq!(p.phases[0].dur_us.count, 2);
        assert_eq!(p.phases[1].name, "simulate");
        assert_eq!(p.hot_cells[0].name, "d3pt7/8x8/a100/cuda");
        let json = serde_json::to_string_pretty(&p).unwrap();
        let back: SweepProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn empty_capture_is_harmless() {
        let p = SweepProfile::from_spans(&[]);
        assert_eq!(p.wall_ns, 0);
        assert_eq!(p.attributed_frac, 0.0);
        assert!(p.phases.is_empty());
    }
}
