//! Rustc-style text renderers for profiles, introspections, and bench
//! diffs — the human half of `bricks prof` (`--json` emits the structures
//! themselves).

use gpu_sim::SimIntrospection;
use serde_json::Value;

use crate::bench::{lookup, MetricDelta};
use crate::sweep::SweepProfile;
use crate::tree::{ProfileNode, ProfileTree};

/// Human-readable byte count (`1.5 MiB`).
pub fn fmt_bytes(b: u64) -> String {
    const UNITS: &[&str] = &["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u + 1 < UNITS.len() {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{b} B")
    } else {
        format!("{v:.1} {}", UNITS[u])
    }
}

/// Human-readable duration from nanoseconds (`1.53 ms`).
pub fn fmt_ns(ns: u64) -> String {
    let v = ns as f64;
    if v < 1e3 {
        format!("{ns} ns")
    } else if v < 1e6 {
        format!("{:.2} us", v / 1e3)
    } else if v < 1e9 {
        format!("{:.2} ms", v / 1e6)
    } else {
        format!("{:.2} s", v / 1e9)
    }
}

/// Render a sweep self-profile: attribution summary, phase table with
/// duration quantiles, and the hot-cell list.
pub fn render_sweep_profile(p: &SweepProfile) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "sweep profile: wall {}, attributed {} ({:.1}%), allocated {}\n",
        fmt_ns(p.wall_ns),
        fmt_ns(p.attributed_ns),
        p.attributed_frac * 100.0,
        fmt_bytes(p.alloc_bytes)
    ));
    if !p.phases.is_empty() {
        out.push_str(&format!(
            "\n{:<12} {:>7} {:>12} {:>7} {:>12} {:>10} {:>10} {:>10}\n",
            "phase", "count", "total", "wall%", "alloc", "mean", "p50", "p99"
        ));
        for ph in &p.phases {
            out.push_str(&format!(
                "{:<12} {:>7} {:>12} {:>6.1}% {:>12} {:>8.1}us {:>8.1}us {:>8.1}us\n",
                ph.name,
                ph.count,
                fmt_ns(ph.total_ns),
                ph.wall_frac * 100.0,
                fmt_bytes(ph.alloc_bytes),
                ph.dur_us.mean(),
                ph.dur_us.quantile(0.5),
                ph.dur_us.quantile(0.99)
            ));
        }
    }
    if !p.hot_cells.is_empty() {
        out.push_str("\nhottest cells:\n");
        for (i, c) in p.hot_cells.iter().enumerate() {
            out.push_str(&format!(
                "  {:>2}. {:<40} {:>12} {:>12}\n",
                i + 1,
                c.name,
                fmt_ns(c.total_ns),
                fmt_bytes(c.alloc_bytes)
            ));
        }
    }
    out
}

/// Render a merged profile tree with indentation, counts, total/self time
/// and allocation per node.
pub fn render_tree(t: &ProfileTree) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<50} {:>7} {:>12} {:>12} {:>12}\n",
        "span", "count", "total", "self", "alloc"
    ));
    fn go(nodes: &[ProfileNode], depth: usize, out: &mut String) {
        for n in nodes {
            let label = format!("{}{}", "  ".repeat(depth), n.name);
            out.push_str(&format!(
                "{:<50} {:>7} {:>12} {:>12} {:>12}\n",
                label,
                n.count,
                fmt_ns(n.total_ns),
                fmt_ns(n.self_ns),
                fmt_bytes(n.alloc_bytes)
            ));
            go(&n.children, depth + 1, out);
        }
    }
    go(&t.roots, 0, &mut out);
    out
}

/// Render a simulator introspection: header, per-class traffic table
/// (with the bit-exact totals line), SM groups, and a compact timeline.
pub fn render_introspection(intro: &SimIntrospection) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "memory simulation: {:?} fidelity, {} blocks in {} classes\n",
        intro.fidelity, intro.num_blocks, intro.num_classes
    ));
    match intro.wave_period {
        Some(p) => out.push_str(&format!(
            "fast-forward: period {p} waves, {} waves skipped\n",
            intro.waves_skipped
        )),
        None => out.push_str("fast-forward: not engaged\n"),
    }

    out.push_str(&format!(
        "\n{:<8} {:>7} {:>12} {:>8} {:>12} {:>12} {:>12} {:>12}\n",
        "class", "blocks", "l1 req", "l1 hit%", "l2 req", "dram rd", "dram wr", "page h/m"
    ));
    let mut row = |name: &str, blocks: String, t: &gpu_sim::TrafficBucket| {
        let sectors = t.l1.hit_sectors + t.l1.miss_sectors;
        let hitp = if sectors == 0 {
            0.0
        } else {
            t.l1.hit_sectors as f64 / sectors as f64 * 100.0
        };
        out.push_str(&format!(
            "{:<8} {:>7} {:>12} {:>7.1}% {:>12} {:>12} {:>12} {:>12}\n",
            name,
            blocks,
            fmt_bytes(t.l1.requested_bytes),
            hitp,
            fmt_bytes(t.l2.requested_bytes),
            fmt_bytes(t.dram_read_bytes),
            fmt_bytes(t.dram_write_bytes),
            format!("{}/{}", t.page_hits, t.page_misses)
        ));
    };
    for c in &intro.classes {
        row(&format!("{}", c.class), format!("{}", c.blocks), &c.traffic);
    }
    row("flush", "-".into(), &intro.flush);
    row("total", format!("{}", intro.num_blocks), &intro.totals());

    if !intro.sm_groups.is_empty() {
        out.push_str(&format!(
            "\n{:<10} {:>8} {:>12} {:>8}\n",
            "sm group", "members", "l1 req", "l1 hit%"
        ));
        for g in &intro.sm_groups {
            let sectors = g.l1.hit_sectors + g.l1.miss_sectors;
            let hitp = if sectors == 0 {
                0.0
            } else {
                g.l1.hit_sectors as f64 / sectors as f64 * 100.0
            };
            out.push_str(&format!(
                "sm{:<8} {:>8} {:>12} {:>7.1}%\n",
                g.representative,
                g.members,
                fmt_bytes(g.l1.requested_bytes),
                hitp
            ));
        }
    }

    if !intro.timeline.is_empty() {
        out.push_str(&format!(
            "\n{:<8} {:>3} {:>12} {:>12} {:>12} {:>12}\n",
            "wave", "ff", "l2 req", "dram rd", "dram wr", "page h/m"
        ));
        for s in &intro.timeline {
            out.push_str(&format!(
                "{:<8} {:>3} {:>12} {:>12} {:>12} {:>12}\n",
                s.wave,
                if s.fast_forwarded { "ff" } else { "" },
                fmt_bytes(s.l2_requested_bytes),
                fmt_bytes(s.dram_read_bytes),
                fmt_bytes(s.dram_write_bytes),
                format!("{}/{}", s.page_hits, s.page_misses)
            ));
        }
    }
    out
}

/// Render a bench diff as one line per rule; regressions are flagged.
pub fn render_diff(deltas: &[MetricDelta]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<26} {:>12} {:>12} {:>9}  verdict\n",
        "metric", "base", "new", "change"
    ));
    for d in deltas {
        let (base, new) = (
            d.base.map_or("-".into(), |v| format!("{v:.3}")),
            d.new.map_or("-".into(), |v| format!("{v:.3}")),
        );
        let change = d
            .ratio
            .map_or("-".into(), |q| format!("{:+.1}%", (q - 1.0) * 100.0));
        let verdict = if d.regression {
            "REGRESSION"
        } else if d.ratio.is_none() {
            "skipped"
        } else {
            "ok"
        };
        out.push_str(&format!(
            "{:<26} {:>12} {:>12} {:>9}  {}\n",
            d.path, base, new, change, verdict
        ));
    }
    out
}

/// Render a bench history: one line per record with provenance (git SHA
/// from the embedded manifest) and the gated metrics.
pub fn render_history(history: &[Value]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<4} {:<12} {:>14} {:>14} {:>9} {:>9}\n",
        "#", "git", "cold cells/s", "warm cells/s", "fast x", "full x"
    ));
    for (i, doc) in history.iter().enumerate() {
        let sha = doc
            .get("manifest")
            .and_then(|m| m.get("git_sha"))
            .and_then(|v| v.as_str())
            .unwrap_or("-");
        let sha = &sha[..sha.len().min(10)];
        let num = |p: &str| lookup(doc, p).map_or("-".into(), |v| format!("{v:.3e}"));
        let spd = |p: &str| lookup(doc, p).map_or("-".into(), |v| format!("{v:.2}"));
        out.push_str(&format!(
            "{:<4} {:<12} {:>14} {:>14} {:>9} {:>9}\n",
            i + 1,
            sha,
            num("sweep.cold_cells_per_s"),
            num("sweep.warm_cells_per_s"),
            spd("fidelity.speedup"),
            spd("fidelity_full.speedup")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::{diff_bench, BENCH_RULES};

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(1536), "1.5 KiB");
        assert_eq!(fmt_ns(500), "500 ns");
        assert_eq!(fmt_ns(1_530_000), "1.53 ms");
    }

    #[test]
    fn diff_render_flags_regressions() {
        let base = serde_json::parse(
            r#"{"sweep": {"cold_cells_per_s": 10.0, "warm_cells_per_s": 100.0},
                "fidelity": {"speedup": 8.0}}"#,
        )
        .unwrap();
        let slow = serde_json::parse(
            r#"{"sweep": {"cold_cells_per_s": 7.0, "warm_cells_per_s": 100.0},
                "fidelity": {"speedup": 8.0}}"#,
        )
        .unwrap();
        let text = render_diff(&diff_bench(&base, &slow, BENCH_RULES));
        assert!(text.contains("REGRESSION"), "{text}");
        assert!(text.contains("skipped"), "{text}"); // fidelity_full absent
        assert!(text.contains("-30.0%"), "{text}");
    }

    #[test]
    fn introspection_render_has_total_row() {
        let intro = SimIntrospection {
            num_blocks: 4,
            num_classes: 1,
            classes: vec![gpu_sim::ClassTraffic {
                class: 0,
                blocks: 4,
                ..Default::default()
            }],
            ..Default::default()
        };
        let text = render_introspection(&intro);
        assert!(text.contains("total"), "{text}");
        assert!(text.contains("flush"), "{text}");
    }
}
