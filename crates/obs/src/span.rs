//! Hierarchical RAII span tracing.
//!
//! [`span`] opens a span; dropping the returned [`SpanGuard`] closes it.
//! Nesting is tracked per thread, so the recorded spans form a forest
//! (per-thread trees) suitable for flame views. Timing uses a single
//! process-wide monotonic epoch, so spans from different threads share a
//! timeline.
//!
//! Tracing is **off** by default: a disabled [`span`] call is one relaxed
//! atomic load and returns an inert guard. [`set_tracing`] (or
//! `BRICK_TRACE=1` via [`crate::init`]) turns recording on.

use std::borrow::Cow;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static TRACING: AtomicBool = AtomicBool::new(false);

/// Pluggable per-thread allocation clock (monotone bytes-allocated
/// counter). `brick-obs` stays dependency-free: the binary (or
/// `brick-prof`) registers `prof_alloc::thread_allocated_bytes` here and
/// every span then records the bytes allocated between entry and exit.
static ALLOC_CLOCK: OnceLock<fn() -> u64> = OnceLock::new();

/// Register the allocation clock spans sample at entry/exit. The clock
/// must be monotone and per-thread (e.g.
/// `prof_alloc::thread_allocated_bytes`). First registration wins;
/// later calls are ignored, so it is safe to call from several
/// entry points.
pub fn set_alloc_clock(clock: fn() -> u64) {
    let _ = ALLOC_CLOCK.set(clock);
}

#[inline]
fn alloc_now() -> u64 {
    match ALLOC_CLOCK.get() {
        Some(f) => f(),
        None => 0,
    }
}

/// Enable or disable span recording process-wide.
pub fn set_tracing(on: bool) {
    TRACING.store(on, Ordering::Relaxed);
}

/// Whether spans are currently recorded.
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// One completed (or still-open) span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span name.
    pub name: Cow<'static, str>,
    /// Category (Chrome trace `cat` field), e.g. `"codegen"`.
    pub cat: &'static str,
    /// Small dense id of the recording thread (1 = first thread seen).
    pub tid: u64,
    /// Nanoseconds from the trace epoch to span entry.
    pub start_ns: u64,
    /// Span duration in nanoseconds (`u64::MAX` while still open).
    pub dur_ns: u64,
    /// Index of the enclosing span in the store, if any.
    pub parent: Option<usize>,
    /// Nesting depth on its thread (0 = root).
    pub depth: u32,
    /// Bytes allocated on the opening thread while the span was open
    /// (0 unless an allocation clock is registered via
    /// [`set_alloc_clock`]). While the span is still open this holds the
    /// clock reading at entry — exports filter on [`SpanRecord::closed`].
    pub alloc_bytes: u64,
}

impl SpanRecord {
    /// True once the span has been closed.
    pub fn closed(&self) -> bool {
        self.dur_ns != u64::MAX
    }
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

static STORE: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    static STACK: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard closing its span on drop. Inert when tracing is disabled.
#[must_use = "a span closes when its guard drops; binding to _ closes it immediately"]
pub struct SpanGuard {
    idx: Option<usize>,
}

/// Open a span named `name` in the default category.
#[inline]
pub fn span(name: impl Into<Cow<'static, str>>) -> SpanGuard {
    span_cat(name, "run")
}

/// Open a span with an explicit Chrome-trace category.
pub fn span_cat(name: impl Into<Cow<'static, str>>, cat: &'static str) -> SpanGuard {
    if !tracing_enabled() {
        return SpanGuard { idx: None };
    }
    let tid = TID.with(|t| *t);
    let (parent, depth) = STACK.with(|s| {
        let s = s.borrow();
        (s.last().copied(), s.len() as u32)
    });
    let rec = SpanRecord {
        name: name.into(),
        cat,
        tid,
        start_ns: now_ns(),
        dur_ns: u64::MAX,
        parent,
        depth,
        alloc_bytes: alloc_now(),
    };
    let idx = {
        let mut store = STORE.lock().unwrap();
        store.push(rec);
        store.len() - 1
    };
    STACK.with(|s| s.borrow_mut().push(idx));
    SpanGuard { idx: Some(idx) }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(idx) = self.idx else { return };
        let end = now_ns();
        let alloc_end = alloc_now();
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Guards drop in LIFO order per thread, but be tolerant of a
            // guard outliving (moved out of) its scope: pop through it.
            while let Some(top) = stack.pop() {
                if top == idx {
                    break;
                }
            }
        });
        let mut store = STORE.lock().unwrap();
        let rec = &mut store[idx];
        rec.dur_ns = end.saturating_sub(rec.start_ns);
        rec.alloc_bytes = alloc_end.saturating_sub(rec.alloc_bytes);
    }
}

/// Snapshot all recorded spans (open spans included, `dur_ns == u64::MAX`).
pub fn spans_snapshot() -> Vec<SpanRecord> {
    STORE.lock().unwrap().clone()
}

/// Drop all recorded spans (the per-thread nesting stacks are untouched,
/// so call this only between top-level spans).
pub fn clear_spans() {
    STORE.lock().unwrap().clear();
}

/// Number of spans currently recorded.
pub fn spans_recorded() -> u64 {
    STORE.lock().unwrap().len() as u64
}
