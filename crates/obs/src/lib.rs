//! # brick-obs
//!
//! Observability for the reproduction pipeline. Four pieces, all
//! dependency-free beyond the workspace serde shim:
//!
//! * **Spans** ([`span`], [`span_cat`]) — hierarchical RAII tracing on a
//!   monotonic clock. Disabled by default; a single atomic load when off.
//!   Enabled spans land in a global, thread-safe span tree exportable as
//!   Chrome `trace_event` JSON ([`trace::chrome_trace_json`], loadable in
//!   `chrome://tracing` or Perfetto) or JSONL ([`trace::spans_jsonl`]).
//! * **Metrics** ([`counter_add`], [`gauge_set`], [`histogram_record`]) —
//!   a global registry of named counters, gauges and log-linear
//!   histograms, snapshotted with [`metrics::snapshot`].
//! * **Logging** — `BRICK_LOG`-filtered leveled logging
//!   (`BRICK_LOG=debug`, `BRICK_LOG=info,gpu_sim=trace`) through the
//!   [`error!`]/[`warn!`]/[`info!`]/[`debug!`]/[`trace!`] macros, plus
//!   [`progress::Progress`] rate/ETA reporting for long sweeps.
//! * **Provenance** ([`manifest::RunManifest`]) — git SHA, config hash,
//!   per-record wall time and an observability summary, serialized
//!   alongside sweep artifacts.
//!
//! Binaries call [`init`] once; library crates just emit — everything is
//! quiet and near-free until an environment variable or the caller turns
//! it on.

pub mod logging;
pub mod manifest;
pub mod metrics;
pub mod progress;
pub mod span;
pub mod trace;

pub use logging::{log_emit, log_level_enabled, parse_filter, set_filter, EnvFilter, Level};
pub use manifest::RunManifest;
pub use metrics::{counter_add, counter_value, gauge_set, histogram_record, MetricsSnapshot};
pub use progress::Progress;
pub use span::{
    clear_spans, set_alloc_clock, set_tracing, span, span_cat, tracing_enabled, SpanGuard,
    SpanRecord,
};
pub use trace::SpanData;

/// Initialise observability from the environment: `BRICK_LOG` selects the
/// log filter (default `warn`), `BRICK_TRACE=1` enables span tracing.
/// Idempotent; binaries call it first thing in `main`.
pub fn init() {
    if let Ok(spec) = std::env::var("BRICK_LOG") {
        match parse_filter(&spec) {
            Ok(f) => set_filter(f),
            Err(e) => eprintln!("brick-obs: ignoring invalid BRICK_LOG ({e})"),
        }
    }
    if std::env::var("BRICK_TRACE").is_ok_and(|v| v != "0" && !v.is_empty()) {
        set_tracing(true);
    }
}
