//! `BRICK_LOG`-style env-filtered leveled logging.
//!
//! Filter syntax mirrors `env_logger`: a bare level (`debug`) sets the
//! default; comma-separated `module=level` entries override it per module
//! path prefix (`info,gpu_sim=trace,brick_codegen=off`). The hot check is
//! one relaxed atomic load of the maximum enabled level, so disabled call
//! sites cost nothing measurable.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// Log verbosity, ordered from silent to chattiest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Nothing is emitted.
    Off = 0,
    /// Unrecoverable problems.
    Error = 1,
    /// Suspicious but non-fatal conditions (the default).
    Warn = 2,
    /// Progress and lifecycle events.
    Info = 3,
    /// Per-stage detail.
    Debug = 4,
    /// Per-item detail.
    Trace = 5,
}

impl Level {
    fn parse(s: &str) -> Result<Level, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" => Ok(Level::Off),
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            other => Err(format!("unknown log level {other:?}")),
        }
    }

    fn tag(self) -> &'static str {
        match self {
            Level::Off => "OFF",
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }
}

/// A parsed `BRICK_LOG` filter: default level plus per-module overrides.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvFilter {
    /// Level for modules with no matching override.
    pub default: Level,
    /// `(module path prefix, level)` overrides; the longest matching
    /// prefix wins.
    pub modules: Vec<(String, Level)>,
}

impl Default for EnvFilter {
    fn default() -> Self {
        EnvFilter {
            default: Level::Warn,
            modules: Vec::new(),
        }
    }
}

impl EnvFilter {
    /// Effective level for a module path like `gpu_sim::hierarchy`.
    pub fn level_for(&self, module: &str) -> Level {
        self.modules
            .iter()
            .filter(|(prefix, _)| {
                module == prefix
                    || (module.starts_with(prefix.as_str())
                        && module[prefix.len()..].starts_with("::"))
            })
            .max_by_key(|(prefix, _)| prefix.len())
            .map(|&(_, level)| level)
            .unwrap_or(self.default)
    }

    /// The chattiest level any module can reach — the fast-path gate.
    pub fn max_level(&self) -> Level {
        self.modules
            .iter()
            .map(|&(_, l)| l)
            .fold(self.default, Level::max)
    }
}

/// Parse a `BRICK_LOG` specification.
///
/// ```
/// use brick_obs::{parse_filter, Level};
/// let f = parse_filter("info,gpu_sim=trace").unwrap();
/// assert_eq!(f.level_for("experiments"), Level::Info);
/// assert_eq!(f.level_for("gpu_sim::cache"), Level::Trace);
/// ```
pub fn parse_filter(spec: &str) -> Result<EnvFilter, String> {
    let mut filter = EnvFilter::default();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        match part.split_once('=') {
            Some((module, level)) => {
                let module = module.trim();
                if module.is_empty() {
                    return Err(format!("empty module name in {part:?}"));
                }
                filter
                    .modules
                    .push((module.to_string(), Level::parse(level)?));
            }
            None => filter.default = Level::parse(part)?,
        }
    }
    Ok(filter)
}

/// Fast gate: max enabled level across all modules.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Warn as u8);
static FILTER: Mutex<Option<EnvFilter>> = Mutex::new(None);

/// Install `filter` as the process-wide log filter.
pub fn set_filter(filter: EnvFilter) {
    MAX_LEVEL.store(filter.max_level() as u8, Ordering::Relaxed);
    *FILTER.lock().unwrap() = Some(filter);
}

/// Cheap pre-check used by the log macros: could *any* module log at
/// `level`?
#[inline]
pub fn log_level_enabled(level: Level) -> bool {
    level as u8 <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Slow path behind [`log_level_enabled`]: apply the module filter and
/// write the line to stderr.
pub fn log_emit(level: Level, module: &str, message: &str) {
    let allowed = {
        let guard = FILTER.lock().unwrap();
        guard
            .as_ref()
            .map(|f| f.level_for(module))
            .unwrap_or(EnvFilter::default().default)
    };
    if level <= allowed {
        eprintln!("[{:5} {module}] {message}", level.tag());
    }
}

/// Log at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        if $crate::log_level_enabled($crate::Level::Error) {
            $crate::log_emit($crate::Level::Error, module_path!(), &format!($($arg)*));
        }
    };
}

/// Log at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        if $crate::log_level_enabled($crate::Level::Warn) {
            $crate::log_emit($crate::Level::Warn, module_path!(), &format!($($arg)*));
        }
    };
}

/// Log at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        if $crate::log_level_enabled($crate::Level::Info) {
            $crate::log_emit($crate::Level::Info, module_path!(), &format!($($arg)*));
        }
    };
}

/// Log at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        if $crate::log_level_enabled($crate::Level::Debug) {
            $crate::log_emit($crate::Level::Debug, module_path!(), &format!($($arg)*));
        }
    };
}

/// Log at [`Level::Trace`].
#[macro_export]
macro_rules! trace {
    ($($arg:tt)*) => {
        if $crate::log_level_enabled($crate::Level::Trace) {
            $crate::log_emit($crate::Level::Trace, module_path!(), &format!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_level_sets_default() {
        let f = parse_filter("debug").unwrap();
        assert_eq!(f.default, Level::Debug);
        assert!(f.modules.is_empty());
        assert_eq!(f.level_for("anything"), Level::Debug);
        assert_eq!(f.max_level(), Level::Debug);
    }

    #[test]
    fn module_overrides_and_prefix_matching() {
        let f = parse_filter("info,gpu_sim=trace,gpu_sim::cache=off").unwrap();
        assert_eq!(f.level_for("experiments::runner"), Level::Info);
        assert_eq!(f.level_for("gpu_sim"), Level::Trace);
        assert_eq!(f.level_for("gpu_sim::hierarchy"), Level::Trace);
        // longest prefix wins
        assert_eq!(f.level_for("gpu_sim::cache"), Level::Off);
        assert_eq!(f.level_for("gpu_sim::cache::sector"), Level::Off);
        // prefix must end at a path boundary
        assert_eq!(f.level_for("gpu_simulator"), Level::Info);
        assert_eq!(f.max_level(), Level::Trace);
    }

    #[test]
    fn whitespace_and_empties_tolerated() {
        let f = parse_filter(" warn , vm = debug ,, ").unwrap();
        assert_eq!(f.default, Level::Warn);
        assert_eq!(f.level_for("vm"), Level::Debug);
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(parse_filter("loud").is_err());
        assert!(parse_filter("gpu_sim=verbose").is_err());
        assert!(parse_filter("=debug").is_err());
    }

    #[test]
    fn level_ordering_drives_the_gate() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info < Level::Trace);
        let f = parse_filter("off,vm=error").unwrap();
        assert_eq!(f.max_level(), Level::Error);
    }
}
