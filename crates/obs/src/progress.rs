//! Rate/ETA progress reporting for long sweeps.
//!
//! A [`Progress`] counts completed items and, when reporting is enabled
//! (the log filter allows `info` for its creator's module, or the caller
//! forces it), prints `done/total`, items/sec and an ETA to stderr —
//! throttled so even a tight loop prints at most about twice a second.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const PRINT_EVERY: Duration = Duration::from_millis(500);

/// A throttled progress reporter.
pub struct Progress {
    label: String,
    total: u64,
    done: AtomicU64,
    started: Instant,
    enabled: bool,
    last_print: Mutex<Instant>,
}

impl Progress {
    /// A reporter for `total` items, printing only when `enabled`.
    pub fn new(label: impl Into<String>, total: u64, enabled: bool) -> Progress {
        let now = Instant::now();
        Progress {
            label: label.into(),
            total,
            done: AtomicU64::new(0),
            started: now,
            enabled,
            // Backdate so the first tick after the throttle window prints.
            last_print: Mutex::new(now - PRINT_EVERY),
        }
    }

    /// Record one completed item; returns the new completion count.
    pub fn tick(&self) -> u64 {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if self.enabled {
            let mut last = self.last_print.lock().unwrap();
            if last.elapsed() >= PRINT_EVERY || done == self.total {
                *last = Instant::now();
                drop(last);
                eprintln!("{}", self.line(done));
            }
        }
        done
    }

    /// Items completed so far.
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    /// Seconds since the reporter was created.
    pub fn elapsed_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Estimated seconds to completion from the live completion rate
    /// (`0.0` once done, `+inf` before the first tick): schedulers export
    /// this as a gauge so a long sweep's remaining cost is observable
    /// mid-run, not just in its final status line.
    pub fn eta_s(&self) -> f64 {
        let done = self.done();
        if done >= self.total {
            return 0.0;
        }
        let rate = done as f64 / self.elapsed_s().max(1e-9);
        if rate <= 0.0 {
            return f64::INFINITY;
        }
        (self.total - done) as f64 / rate
    }

    /// The status line for a completion count (exposed for tests).
    pub fn line(&self, done: u64) -> String {
        let elapsed = self.elapsed_s().max(1e-9);
        let rate = done as f64 / elapsed;
        let pct = if self.total == 0 {
            100.0
        } else {
            100.0 * done as f64 / self.total as f64
        };
        let eta = if rate > 0.0 && done < self.total {
            format!("{:.1}s", (self.total - done) as f64 / rate)
        } else {
            "0.0s".to_string()
        };
        format!(
            "[{}] {done}/{} ({pct:.0}%) {rate:.1}/s ETA {eta}",
            self.label, self.total
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_formats() {
        let p = Progress::new("sweep", 10, false);
        for _ in 0..4 {
            p.tick();
        }
        assert_eq!(p.done(), 4);
        let line = p.line(4);
        assert!(line.starts_with("[sweep] 4/10 (40%)"), "{line}");
        assert!(line.contains("ETA"), "{line}");
    }

    #[test]
    fn finished_eta_is_zero() {
        let p = Progress::new("x", 2, false);
        p.tick();
        p.tick();
        assert!(p.line(2).contains("ETA 0.0s"));
        assert_eq!(p.eta_s(), 0.0);
    }

    #[test]
    fn live_eta_becomes_finite_after_first_tick() {
        let p = Progress::new("x", 4, false);
        assert_eq!(p.eta_s(), f64::INFINITY, "no ticks yet");
        p.tick();
        assert!(p.eta_s().is_finite() && p.eta_s() >= 0.0);
    }
}
