//! Global metrics registry: named counters, gauges, and log-linear
//! histograms.
//!
//! Recording is a mutex-guarded map update — cheap relative to the
//! per-kernel and per-pass granularity it is used at (never inside
//! per-access simulation loops). [`snapshot`] captures everything for
//! serialization; [`render_snapshot`] pretty-prints it.

use std::sync::Mutex;

use serde::{Deserialize, Serialize};

/// Sub-buckets per power of two in histogram resolution (a log-linear
/// layout: within each octave `[2^k, 2^(k+1))` the buckets are linear).
const SUBS: usize = 4;
/// Values below `1.0` (and non-positive values) land in bucket 0.
const BUCKET0_HI: f64 = 1.0;

/// A log-linear histogram of non-negative samples.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Smallest sample (`+inf` when empty).
    pub min: f64,
    /// Largest sample (`-inf` when empty).
    pub max: f64,
    /// Bucket counts, indexed by [`bucket_index`]; trailing empty buckets
    /// are not stored.
    pub buckets: Vec<u64>,
}

/// Bucket index for a sample: bucket 0 holds `(-inf, 1.0)`; above that,
/// each power-of-two octave splits into [`SUBS`] linear sub-buckets.
pub fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v < BUCKET0_HI {
        return 0;
    }
    let v = if v.is_finite() { v } else { f64::MAX };
    let octave = v.log2().floor() as usize;
    let lo = (octave as f64).exp2();
    let sub = (((v - lo) / lo) * SUBS as f64) as usize;
    1 + octave * SUBS + sub.min(SUBS - 1)
}

/// Inclusive-lower / exclusive-upper bounds of bucket `i`.
pub fn bucket_bounds(i: usize) -> (f64, f64) {
    if i == 0 {
        return (f64::NEG_INFINITY, BUCKET0_HI);
    }
    let octave = (i - 1) / SUBS;
    let sub = (i - 1) % SUBS;
    let lo = (octave as f64).exp2();
    let step = lo / SUBS as f64;
    (lo + sub as f64 * step, lo + (sub + 1) as f64 * step)
}

impl Histogram {
    /// Record one sample.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let i = bucket_index(v);
        if self.buckets.len() <= i {
            self.buckets.resize(i + 1, 0);
        }
        self.buckets[i] += 1;
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Upper bound of the bucket containing quantile `q` (0..=1) — a
    /// log-linear approximation of the true quantile.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: Vec::new(),
        }
    }
}

#[derive(Default)]
struct Registry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, Histogram)>,
}

static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

fn with_registry<R>(f: impl FnOnce(&mut Registry) -> R) -> R {
    let mut guard = REGISTRY.lock().unwrap();
    f(guard.get_or_insert_with(Registry::default))
}

/// Add `n` to the counter `name`, creating it at zero if absent.
pub fn counter_add(name: &str, n: u64) {
    with_registry(|r| match r.counters.iter_mut().find(|(k, _)| k == name) {
        Some((_, v)) => *v += n,
        None => r.counters.push((name.to_string(), n)),
    });
}

/// Current value of the counter `name` (0 if it was never incremented).
/// Counters are process-cumulative; difference two readings to attribute
/// counts to one run.
pub fn counter_value(name: &str) -> u64 {
    with_registry(|r| {
        r.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    })
}

/// Set the gauge `name` to `v`.
pub fn gauge_set(name: &str, v: f64) {
    with_registry(|r| match r.gauges.iter_mut().find(|(k, _)| k == name) {
        Some((_, g)) => *g = v,
        None => r.gauges.push((name.to_string(), v)),
    });
}

/// Record `v` into the histogram `name`, creating it if absent.
pub fn histogram_record(name: &str, v: f64) {
    with_registry(|r| match r.histograms.iter_mut().find(|(k, _)| k == name) {
        Some((_, h)) => h.record(v),
        None => {
            let mut h = Histogram::new();
            h.record(v);
            r.histograms.push((name.to_string(), h));
        }
    });
}

/// A serializable capture of the whole registry, names sorted.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, f64)>,
    /// Histograms by name.
    pub histograms: Vec<(String, Histogram)>,
}

/// Capture the current registry contents.
pub fn snapshot() -> MetricsSnapshot {
    with_registry(|r| {
        let mut s = MetricsSnapshot {
            counters: r.counters.clone(),
            gauges: r.gauges.clone(),
            histograms: r.histograms.clone(),
        };
        s.counters.sort_by(|a, b| a.0.cmp(&b.0));
        s.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        s.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        s
    })
}

/// Reset the registry to empty.
pub fn clear_metrics() {
    *REGISTRY.lock().unwrap() = None;
}

/// Number of distinct metrics currently registered.
pub fn metrics_recorded() -> u64 {
    with_registry(|r| (r.counters.len() + r.gauges.len() + r.histograms.len()) as u64)
}

/// Pretty-print a snapshot: counters, gauges, then histogram summaries
/// (count / mean / p50 / p99 / max).
pub fn render_snapshot(s: &MetricsSnapshot) -> String {
    let mut out = String::new();
    if !s.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, v) in &s.counters {
            out.push_str(&format!("  {name:<40} {v}\n"));
        }
    }
    if !s.gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, v) in &s.gauges {
            out.push_str(&format!("  {name:<40} {v:.4}\n"));
        }
    }
    if !s.histograms.is_empty() {
        out.push_str("histograms:                                count       mean        p50        p99        max\n");
        for (name, h) in &s.histograms {
            out.push_str(&format!(
                "  {name:<40} {:>6} {:>10.2} {:>10.2} {:>10.2} {:>10.2}\n",
                h.count,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99),
                if h.count == 0 { 0.0 } else { h.max }
            ));
        }
    }
    if out.is_empty() {
        out.push_str("(no metrics recorded)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_log_linear() {
        // bucket 0: everything below 1.0 (and NaN)
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-5.0), 0);
        assert_eq!(bucket_index(0.999), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        // octave [1,2): four linear sub-buckets of width 0.25
        assert_eq!(bucket_index(1.0), 1);
        assert_eq!(bucket_index(1.24), 1);
        assert_eq!(bucket_index(1.25), 2);
        assert_eq!(bucket_index(1.99), 4);
        // octave [2,4): sub-buckets of width 0.5
        assert_eq!(bucket_index(2.0), 5);
        assert_eq!(bucket_index(2.49), 5);
        assert_eq!(bucket_index(2.5), 6);
        assert_eq!(bucket_index(3.99), 8);
        assert_eq!(bucket_index(4.0), 9);
        // +inf clamps into the top finite bucket instead of panicking
        assert!(bucket_index(f64::INFINITY) > bucket_index(1e300));
    }

    #[test]
    fn bounds_invert_the_index() {
        for v in [1.0, 1.3, 2.0, 3.7, 8.0, 100.0, 1e6, 3.5e9] {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v < hi, "{v} not in [{lo},{hi}) (bucket {i})");
        }
        // adjacent buckets tile the line
        for i in 1..64 {
            assert_eq!(bucket_bounds(i).1, bucket_bounds(i + 1).0);
        }
    }

    #[test]
    fn histogram_statistics() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            h.record(v);
        }
        assert_eq!(h.count, 4);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 4.0);
        assert!((h.mean() - 2.5).abs() < 1e-12);
        let p50 = h.quantile(0.5);
        assert!((1.9..=2.6).contains(&p50), "p50 {p50}");
        assert_eq!(h.quantile(1.0), 4.0);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut h = Histogram::new();
        h.record(10.0);
        h.record(1000.0);
        let snap = MetricsSnapshot {
            counters: vec![("a.hits".into(), 7)],
            gauges: vec![("occ".into(), 0.5)],
            histograms: vec![("lat".into(), h)],
        };
        let json = serde_json::to_string_pretty(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
        let text = render_snapshot(&back);
        assert!(text.contains("a.hits"));
        assert!(text.contains("lat"));
    }
}
