//! Run provenance: what produced an artifact, and at what cost.
//!
//! A [`RunManifest`] is assembled by the sweep runner and serialized next
//! to (or inside) the artifacts it describes, so a saved result can be
//! traced back to a commit and configuration, and its per-record wall
//! times inspected with `bricks obs`.

use serde::{Deserialize, Serialize};

use crate::metrics::metrics_recorded;
use crate::span::spans_recorded;

/// Provenance and cost accounting for one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Commit SHA of the working tree, when run inside a git checkout.
    pub git_sha: Option<String>,
    /// FNV-1a hash of the serialized run configuration.
    pub config_hash: u64,
    /// Unix timestamp (seconds) at which the run started.
    pub started_unix: u64,
    /// Total wall time of the run in seconds.
    pub wall_s: f64,
    /// Wall time of each produced record, in run order, seconds.
    pub record_wall_s: Vec<f64>,
    /// Spans recorded during the run (0 unless tracing was enabled).
    pub spans_recorded: u64,
    /// Distinct metrics registered during the run.
    pub metrics_recorded: u64,
    /// Simulation fidelity the run used (`"fast"`/`"exact"`), when the
    /// producing workload has one.
    pub fidelity: Option<String>,
    /// Resolved worker-thread count of the run's cell fan-out, when the
    /// producing workload schedules one.
    pub jobs: Option<u64>,
    /// Sweep result-cache hits during this run.
    pub cache_hits: u64,
    /// Sweep result-cache misses during this run.
    pub cache_misses: u64,
    /// Sweep result-cache entries found corrupt during this run.
    pub cache_corrupt: u64,
    /// Execution mode the run's vector kernels were dispatched under
    /// (`"scalar"`/`"auto"`/`"avx2"`/`"neon"`), when the producing
    /// workload executes kernels numerically.
    pub exec_mode: Option<String>,
    /// Temporal fusion degrees the run swept (empty for the unfused base
    /// matrix, where every kernel is implicitly `T = 1`).
    pub temporal_degrees: Vec<u32>,
    /// Fingerprint of the tuning space a tuner run searched (0 for
    /// non-tuner workloads).
    pub tune_space_fingerprint: u64,
    /// Raw candidate cells the tuner enumerated across groups.
    pub tune_raw_cells: u64,
    /// Cells the tuner actually measured (validity survivors, unpruned).
    pub tune_valid_cells: u64,
    /// Cells dropped by the tuner's Roofline upper bound.
    pub tune_pruned_cells: u64,
    /// Cells rejected by the tuner's validity predicates.
    pub tune_skipped_cells: u64,
}

impl RunManifest {
    /// Start a manifest: stamps the start time, config hash and git SHA.
    pub fn begin(config_json: &str) -> RunManifest {
        RunManifest {
            git_sha: git_sha(),
            config_hash: fnv1a64(config_json.as_bytes()),
            started_unix: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            ..RunManifest::default()
        }
    }

    /// Finish the manifest with timings and the observability summary.
    pub fn finish(mut self, wall_s: f64, record_wall_s: Vec<f64>) -> RunManifest {
        self.wall_s = wall_s;
        self.record_wall_s = record_wall_s;
        self.spans_recorded = spans_recorded();
        self.metrics_recorded = metrics_recorded();
        self
    }

    /// Record the sweep-level provenance: fidelity mode, the resolved
    /// worker count, and the run's result-cache outcome counts (hits,
    /// misses, corrupt) — the parts of an incremental run's identity the
    /// timing fields alone cannot reconstruct.
    pub fn with_sweep_info(
        mut self,
        fidelity: &str,
        jobs: u64,
        cache: (u64, u64, u64),
    ) -> RunManifest {
        self.fidelity = Some(fidelity.to_string());
        self.jobs = Some(jobs);
        (self.cache_hits, self.cache_misses, self.cache_corrupt) = cache;
        self
    }

    /// Record the execution mode the run's vector kernels were dispatched
    /// under, for workloads that execute kernels numerically.
    pub fn with_exec_mode(mut self, exec_mode: &str) -> RunManifest {
        self.exec_mode = Some(exec_mode.to_string());
        self
    }

    /// Record the temporal fusion degrees a temporal sweep covered, in
    /// sweep order.
    pub fn with_temporal_degrees(mut self, degrees: &[u32]) -> RunManifest {
        self.temporal_degrees = degrees.to_vec();
        self
    }

    /// Record a tuner run's cell accounting: the searched space's
    /// fingerprint and how the raw candidate count decomposed into
    /// measured, pruned and validity-skipped cells.
    pub fn with_tune_info(
        mut self,
        space_fingerprint: u64,
        raw: u64,
        valid: u64,
        pruned: u64,
        skipped: u64,
    ) -> RunManifest {
        self.tune_space_fingerprint = space_fingerprint;
        self.tune_raw_cells = raw;
        self.tune_valid_cells = valid;
        self.tune_pruned_cells = pruned;
        self.tune_skipped_cells = skipped;
        self
    }

    /// Mean per-record wall time in seconds (0.0 with no records).
    pub fn mean_record_s(&self) -> f64 {
        if self.record_wall_s.is_empty() {
            0.0
        } else {
            self.record_wall_s.iter().sum::<f64>() / self.record_wall_s.len() as f64
        }
    }
}

/// 64-bit FNV-1a.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Resolve the commit SHA by walking up from the current directory to a
/// `.git` and following `HEAD` — no git binary or library needed.
pub fn git_sha() -> Option<String> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let git = dir.join(".git");
        if git.is_dir() {
            return sha_from_git_dir(&git);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn sha_from_git_dir(git: &std::path::Path) -> Option<String> {
    let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
    let head = head.trim();
    let resolved = match head.strip_prefix("ref: ") {
        Some(refname) => {
            let direct = std::fs::read_to_string(git.join(refname))
                .map(|s| s.trim().to_string())
                .ok();
            direct.or_else(|| {
                // packed refs: "<sha> <refname>" lines
                let packed = std::fs::read_to_string(git.join("packed-refs")).ok()?;
                packed.lines().find_map(|l| {
                    let (sha, name) = l.split_once(' ')?;
                    (name.trim() == refname).then(|| sha.to_string())
                })
            })?
        }
        None => head.to_string(), // detached HEAD
    };
    (resolved.len() >= 7 && resolved.bytes().all(|b| b.is_ascii_hexdigit())).then_some(resolved)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_input_sensitive() {
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_ne!(fnv1a64(b"{\"n\":256}"), fnv1a64(b"{\"n\":512}"));
        assert_eq!(fnv1a64(b"abc"), fnv1a64(b"abc"));
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let m = RunManifest {
            git_sha: Some("deadbeefcafe".into()),
            config_hash: 42,
            started_unix: 1_700_000_000,
            wall_s: 12.5,
            record_wall_s: vec![0.5, 1.0],
            spans_recorded: 7,
            metrics_recorded: 3,
            fidelity: Some("fast".into()),
            jobs: Some(8),
            cache_hits: 100,
            cache_misses: 8,
            cache_corrupt: 1,
            exec_mode: Some("avx2".into()),
            temporal_degrees: vec![1, 2, 4],
            tune_space_fingerprint: 7,
            tune_raw_cells: 1000,
            tune_valid_cells: 600,
            tune_pruned_cells: 150,
            tune_skipped_cells: 250,
        };
        let json = serde_json::to_string(&m).unwrap();
        let back: RunManifest = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
        assert!((back.mean_record_s() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn repo_checkout_yields_a_sha() {
        // The test runs inside this repository's checkout.
        if let Some(sha) = git_sha() {
            assert!(sha.len() >= 7);
            assert!(sha.bytes().all(|b| b.is_ascii_hexdigit()));
        }
    }
}
