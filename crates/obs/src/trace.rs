//! Span export: Chrome `trace_event` JSON, JSONL, parse-back and text
//! summaries.
//!
//! The Chrome format is the `{"traceEvents": [...]}` object form with
//! complete (`"ph": "X"`) events — directly loadable in
//! `chrome://tracing` and Perfetto. Timestamps and durations are
//! microseconds (fractional), per the trace-event spec.

use serde_json::Value;

use crate::span::{spans_snapshot, SpanRecord};

/// One Chrome `trace_event` complete event.
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeEvent {
    /// Event name.
    pub name: String,
    /// Category.
    pub cat: String,
    /// Timestamp in microseconds from the trace epoch.
    pub ts_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Process id (always 1 here).
    pub pid: u64,
    /// Thread id.
    pub tid: u64,
}

fn chrome_value(spans: &[SpanRecord]) -> Value {
    let events: Vec<Value> = spans
        .iter()
        .filter(|s| s.closed())
        .map(|s| {
            Value::Obj(vec![
                ("name".into(), Value::Str(s.name.to_string())),
                ("cat".into(), Value::Str(s.cat.to_string())),
                ("ph".into(), Value::Str("X".into())),
                ("ts".into(), Value::F64(s.start_ns as f64 / 1e3)),
                ("dur".into(), Value::F64(s.dur_ns as f64 / 1e3)),
                ("pid".into(), Value::U64(1)),
                ("tid".into(), Value::U64(s.tid)),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("traceEvents".into(), Value::Arr(events)),
        ("displayTimeUnit".into(), Value::Str("ms".into())),
    ])
}

/// Serialize `spans` as Chrome `trace_event` JSON.
pub fn chrome_trace_json_for(spans: &[SpanRecord]) -> String {
    serde_json::to_string_pretty(&chrome_value(spans)).expect("Value serialization is total")
}

/// Serialize every recorded span as Chrome `trace_event` JSON.
pub fn chrome_trace_json() -> String {
    chrome_trace_json_for(&spans_snapshot())
}

/// Parse a Chrome trace produced by [`chrome_trace_json`] (or any trace
/// using the object form with complete events).
pub fn parse_chrome_trace(text: &str) -> Result<Vec<ChromeEvent>, String> {
    let v = serde_json::parse(text).map_err(|e| e.0)?;
    let events = v
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or("no traceEvents array")?;
    let mut out = Vec::with_capacity(events.len());
    for e in events {
        if e.get("ph").and_then(Value::as_str) != Some("X") {
            continue; // only complete events carry a duration
        }
        out.push(ChromeEvent {
            name: e
                .get("name")
                .and_then(Value::as_str)
                .ok_or("event without name")?
                .to_string(),
            cat: e
                .get("cat")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string(),
            ts_us: e
                .get("ts")
                .and_then(Value::as_f64)
                .ok_or("event without ts")?,
            dur_us: e
                .get("dur")
                .and_then(Value::as_f64)
                .ok_or("event without dur")?,
            pid: e.get("pid").and_then(Value::as_u64).unwrap_or(1),
            tid: e.get("tid").and_then(Value::as_u64).unwrap_or(0),
        });
    }
    Ok(out)
}

/// Serialize `spans` as JSONL: one span object per line.
pub fn spans_jsonl_for(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for s in spans.iter().filter(|s| s.closed()) {
        let v = Value::Obj(vec![
            ("name".into(), Value::Str(s.name.to_string())),
            ("cat".into(), Value::Str(s.cat.to_string())),
            ("tid".into(), Value::U64(s.tid)),
            ("start_ns".into(), Value::U64(s.start_ns)),
            ("dur_ns".into(), Value::U64(s.dur_ns)),
            (
                "parent".into(),
                match s.parent {
                    Some(p) => Value::U64(p as u64),
                    None => Value::Null,
                },
            ),
            ("depth".into(), Value::U64(s.depth as u64)),
            ("alloc_bytes".into(), Value::U64(s.alloc_bytes)),
        ]);
        out.push_str(&serde_json::to_string(&v).expect("Value serialization is total"));
        out.push('\n');
    }
    out
}

/// Serialize every recorded span as JSONL.
pub fn spans_jsonl() -> String {
    spans_jsonl_for(&spans_snapshot())
}

/// An owned span, decoupled from the live store: what
/// [`parse_spans_jsonl`] returns and what profile builders consume
/// (`SpanRecord` borrows `'static` names and cannot be parsed back).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanData {
    /// Span name.
    pub name: String,
    /// Category.
    pub cat: String,
    /// Dense thread id.
    pub tid: u64,
    /// Nanoseconds from the trace epoch to entry.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Index of the enclosing span within the same span list.
    pub parent: Option<usize>,
    /// Nesting depth on its thread.
    pub depth: u32,
    /// Bytes allocated on the opening thread while the span was open.
    pub alloc_bytes: u64,
}

impl From<&SpanRecord> for SpanData {
    fn from(s: &SpanRecord) -> SpanData {
        SpanData {
            name: s.name.to_string(),
            cat: s.cat.to_string(),
            tid: s.tid,
            start_ns: s.start_ns,
            dur_ns: s.dur_ns,
            parent: s.parent,
            depth: s.depth,
            alloc_bytes: s.alloc_bytes,
        }
    }
}

/// Snapshot every *closed* recorded span as owned [`SpanData`], with
/// `parent` indices re-mapped to the filtered list.
pub fn spans_data() -> Vec<SpanData> {
    let all = spans_snapshot();
    // map store index -> filtered index for parent remapping
    let mut remap: Vec<Option<usize>> = vec![None; all.len()];
    let mut out = Vec::new();
    for (i, s) in all.iter().enumerate() {
        if !s.closed() {
            continue;
        }
        remap[i] = Some(out.len());
        let mut d = SpanData::from(s);
        d.parent = s.parent.and_then(|p| remap.get(p).copied().flatten());
        out.push(d);
    }
    out
}

/// Parse a spans JSONL document produced by [`spans_jsonl`]. Blank lines
/// are skipped; a missing `alloc_bytes` (older traces) reads as 0.
pub fn parse_spans_jsonl(text: &str) -> Result<Vec<SpanData>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = serde_json::parse(line).map_err(|e| format!("line {}: {}", lineno + 1, e.0))?;
        let str_of = |k: &str| {
            v.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("line {}: missing {k}", lineno + 1))
        };
        let u64_of = |k: &str| {
            v.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("line {}: missing {k}", lineno + 1))
        };
        out.push(SpanData {
            name: str_of("name")?,
            cat: str_of("cat")?,
            tid: u64_of("tid")?,
            start_ns: u64_of("start_ns")?,
            dur_ns: u64_of("dur_ns")?,
            parent: v.get("parent").and_then(Value::as_u64).map(|p| p as usize),
            depth: u64_of("depth")? as u32,
            alloc_bytes: v.get("alloc_bytes").and_then(Value::as_u64).unwrap_or(0),
        });
    }
    Ok(out)
}

/// Aggregated per-name span statistics.
#[derive(Debug, Clone)]
pub struct SpanStat {
    /// Span name.
    pub name: String,
    /// Number of occurrences.
    pub count: u64,
    /// Total (inclusive) time in microseconds.
    pub total_us: f64,
    /// Self time — total minus time inside child spans — in microseconds.
    pub self_us: f64,
}

/// Aggregate events by name with self-time (total minus the duration of
/// events strictly nested inside, same tid), sorted by self-time
/// descending.
pub fn span_stats(events: &[ChromeEvent]) -> Vec<SpanStat> {
    // Child time per event: for each event, find its tightest enclosing
    // event on the same thread and charge the child's duration to it.
    let mut child_us = vec![0.0f64; events.len()];
    for (i, e) in events.iter().enumerate() {
        let mut best: Option<usize> = None;
        for (j, p) in events.iter().enumerate() {
            if i == j || p.tid != e.tid {
                continue;
            }
            let encloses = p.ts_us <= e.ts_us
                && p.ts_us + p.dur_us >= e.ts_us + e.dur_us
                && p.dur_us > e.dur_us;
            if encloses && best.is_none_or(|b| events[b].dur_us > p.dur_us) {
                best = Some(j);
            }
        }
        if let Some(p) = best {
            child_us[p] += e.dur_us;
        }
    }

    let mut by_name: Vec<SpanStat> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        let self_us = (e.dur_us - child_us[i]).max(0.0);
        match by_name.iter_mut().find(|s| s.name == e.name) {
            Some(s) => {
                s.count += 1;
                s.total_us += e.dur_us;
                s.self_us += self_us;
            }
            None => by_name.push(SpanStat {
                name: e.name.clone(),
                count: 1,
                total_us: e.dur_us,
                self_us,
            }),
        }
    }
    by_name.sort_by(|a, b| b.self_us.total_cmp(&a.self_us));
    by_name
}

/// Render the top-`limit` spans by self-time as a text table.
pub fn render_span_stats(stats: &[SpanStat], limit: usize) -> String {
    let mut out = String::from("span                              count   total ms    self ms\n");
    for s in stats.iter().take(limit) {
        let name: String = if s.name.len() > 32 {
            format!("{}…", &s.name[..31])
        } else {
            s.name.clone()
        };
        out.push_str(&format!(
            "{name:<33} {:>5} {:>10.3} {:>10.3}\n",
            s.count,
            s.total_us / 1e3,
            s.self_us / 1e3
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, tid: u64, ts: f64, dur: f64) -> ChromeEvent {
        ChromeEvent {
            name: name.into(),
            cat: "t".into(),
            ts_us: ts,
            dur_us: dur,
            pid: 1,
            tid,
        }
    }

    #[test]
    fn self_time_subtracts_nested_children() {
        // outer [0,100) contains mid [10,60) contains inner [20,30)
        let events = vec![
            ev("outer", 1, 0.0, 100.0),
            ev("mid", 1, 10.0, 50.0),
            ev("inner", 1, 20.0, 10.0),
        ];
        let stats = span_stats(&events);
        let get = |n: &str| stats.iter().find(|s| s.name == n).unwrap();
        assert!((get("outer").self_us - 50.0).abs() < 1e-9);
        assert!((get("mid").self_us - 40.0).abs() < 1e-9);
        assert!((get("inner").self_us - 10.0).abs() < 1e-9);
        // sorted by self time descending
        assert_eq!(stats[0].name, "outer");
    }

    #[test]
    fn other_threads_do_not_nest() {
        let events = vec![ev("a", 1, 0.0, 100.0), ev("b", 2, 10.0, 50.0)];
        let stats = span_stats(&events);
        assert!(stats.iter().all(|s| (s.self_us - s.total_us).abs() < 1e-9));
    }
}
