//! Integration tests over brick-obs's global state: span nesting and
//! ordering (including under threads), Chrome trace export/parse
//! round-trips, and the end-to-end span→stats path.
//!
//! The span store is process-global, so tests that use it serialize on
//! one lock and clear the store at entry.

use std::sync::Mutex;

use brick_obs::trace::{
    chrome_trace_json, parse_chrome_trace, render_span_stats, span_stats, spans_jsonl,
};
use brick_obs::{set_tracing, span, span_cat};

static LOCK: Mutex<()> = Mutex::new(());

fn with_clean_tracing<R>(f: impl FnOnce() -> R) -> R {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    brick_obs::span::clear_spans();
    set_tracing(true);
    let r = f();
    set_tracing(false);
    r
}

#[test]
fn spans_nest_and_order_on_one_thread() {
    with_clean_tracing(|| {
        {
            let _outer = span("outer");
            {
                let _inner = span_cat("inner", "codegen");
            }
            let _sibling = span("sibling");
        }
        let spans = brick_obs::span::spans_snapshot();
        assert_eq!(spans.len(), 3);
        let outer = spans.iter().position(|s| s.name == "outer").unwrap();
        let inner = &spans[spans.iter().position(|s| s.name == "inner").unwrap()];
        let sibling = &spans[spans.iter().position(|s| s.name == "sibling").unwrap()];

        assert_eq!(spans[outer].parent, None);
        assert_eq!(spans[outer].depth, 0);
        assert_eq!(inner.parent, Some(outer));
        assert_eq!(inner.depth, 1);
        assert_eq!(sibling.parent, Some(outer));
        assert_eq!(inner.cat, "codegen");

        // containment: children start no earlier and end no later
        for child in [inner, sibling] {
            assert!(child.start_ns >= spans[outer].start_ns);
            assert!(child.start_ns + child.dur_ns <= spans[outer].start_ns + spans[outer].dur_ns);
        }
        // ordering: inner closed before sibling opened
        assert!(inner.start_ns + inner.dur_ns <= sibling.start_ns);
    });
}

#[test]
fn threads_get_independent_stacks() {
    with_clean_tracing(|| {
        let _root = span("main-root");
        std::thread::scope(|s| {
            for t in 0..4 {
                s.spawn(move || {
                    let _w = span(format!("worker-{t}"));
                    let _c = span(format!("worker-{t}-child"));
                });
            }
        });
        let spans = brick_obs::span::spans_snapshot();
        let root_tid = spans
            .iter()
            .find(|s| s.name == "main-root")
            .map(|s| s.tid)
            .unwrap();
        for t in 0..4 {
            let w = spans
                .iter()
                .find(|s| s.name == format!("worker-{t}"))
                .unwrap();
            let c = spans
                .iter()
                .find(|s| s.name == format!("worker-{t}-child"))
                .unwrap();
            // a worker's root has no parent: nesting is per-thread, so the
            // main thread's open span must not adopt other threads' spans
            assert_eq!(w.parent, None, "worker-{t} must be a root");
            assert_eq!(w.depth, 0);
            assert_ne!(w.tid, root_tid);
            assert_eq!(c.tid, w.tid);
            assert_eq!(c.depth, 1);
            assert_eq!(spans[c.parent.unwrap()].name, format!("worker-{t}"));
        }
    });
}

#[test]
fn chrome_trace_round_trips_and_has_schema_fields() {
    with_clean_tracing(|| {
        {
            let _a = span_cat("memory-sim", "memory-sim");
            let _b = span_cat("timing", "timing");
        }
        let json = chrome_trace_json();

        // schema: object form, complete events, µs timestamps
        let v = serde_json::parse(&json).unwrap();
        let events = v.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        assert_eq!(events.len(), 2);
        for e in events {
            assert_eq!(e.get("ph").and_then(|p| p.as_str()), Some("X"));
            assert!(e.get("ts").and_then(|t| t.as_f64()).is_some());
            assert!(e.get("dur").and_then(|d| d.as_f64()).unwrap() >= 0.0);
            assert!(e.get("pid").and_then(|p| p.as_u64()).is_some());
            assert!(e.get("tid").and_then(|t| t.as_u64()).is_some());
        }

        let parsed = parse_chrome_trace(&json).unwrap();
        assert_eq!(parsed.len(), 2);
        let names: Vec<&str> = parsed.iter().map(|e| e.name.as_str()).collect();
        assert!(names.contains(&"memory-sim") && names.contains(&"timing"));
        assert!(parsed.iter().any(|e| e.cat == "memory-sim"));

        let stats = span_stats(&parsed);
        let rendered = render_span_stats(&stats, 10);
        assert!(rendered.contains("memory-sim"), "{rendered}");
    });
}

#[test]
fn jsonl_is_one_valid_object_per_line() {
    with_clean_tracing(|| {
        {
            let _a = span("alpha");
            let _b = span("beta");
        }
        let jsonl = spans_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = serde_json::parse(line).unwrap();
            assert!(v.get("name").and_then(|n| n.as_str()).is_some());
            assert!(v.get("start_ns").and_then(|n| n.as_u64()).is_some());
            assert!(v.get("dur_ns").and_then(|n| n.as_u64()).is_some());
        }
    });
}

#[test]
fn disabled_tracing_records_nothing() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    brick_obs::span::clear_spans();
    set_tracing(false);
    {
        let _s = span("invisible");
    }
    assert_eq!(brick_obs::span::spans_recorded(), 0);
    let parsed = parse_chrome_trace(&chrome_trace_json()).unwrap();
    assert!(parsed.is_empty());
}
