//! Sweep-level behaviour of the content-addressed result cache: entries
//! are keyed by everything the result depends on, invalidated by kernel
//! or simulation-config changes, and corruption degrades to a recompute
//! (with a repair) rather than a wrong or failed run. Key-construction
//! unit tests live in `experiments::cache`; the generic store's in
//! `brick_sweep::cache`.

use std::fs;
use std::path::PathBuf;

use experiments::{CellFilter, ExperimentParams, SweepOptions};
use gpu_sim::{GpuKind, ProgModel};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sweep_cache_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn one_cell() -> CellFilter {
    CellFilter {
        stencils: Some(vec!["7pt".into()]),
        gpus: Some(vec![GpuKind::A100]),
        models: Some(vec![ProgModel::Cuda]),
        configs: None,
    }
}

fn opts(n: usize, dir: &PathBuf) -> SweepOptions {
    SweepOptions::new(ExperimentParams { n })
        .cache_dir(dir)
        .filter(one_cell())
}

fn counter(name: &str) -> u64 {
    brick_obs::metrics::snapshot()
        .counters
        .iter()
        .find(|(k, _)| k == name)
        .map_or(0, |(_, v)| *v)
}

fn entries_with_prefix(dir: &PathBuf, prefix: &str) -> Vec<String> {
    let mut names: Vec<String> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|n| n.starts_with(prefix))
        .collect();
    names.sort();
    names
}

fn cell_entries(dir: &PathBuf) -> Vec<String> {
    entries_with_prefix(dir, "cell-")
}

#[test]
fn entries_are_stable_across_runs_and_invalidated_by_config_change() {
    let dir = scratch_dir("invalidation");
    let s64 = experiments::sweep_with(&opts(64, &dir)).unwrap();
    let after_cold = cell_entries(&dir);
    assert!(!after_cold.is_empty());

    // same config, new run: same keys, nothing new written
    let s64b = experiments::sweep_with(&opts(64, &dir)).unwrap();
    assert_eq!(cell_entries(&dir), after_cold, "stable keys across runs");
    assert_eq!(
        serde_json::to_string(&s64.records).unwrap(),
        serde_json::to_string(&s64b.records).unwrap()
    );

    // a simulation-config change (domain size) misses every old entry
    let misses_before = counter("sweep.cache.misses");
    let _s128 = experiments::sweep_with(&opts(128, &dir)).unwrap();
    assert!(
        counter("sweep.cache.misses") > misses_before,
        "changed config cannot be served from old entries"
    );
    assert!(
        cell_entries(&dir).len() > after_cold.len(),
        "changed config wrote new entries instead of overwriting"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn temporal_degrees_never_alias_in_the_cache() {
    // the satellite invariant: a T=2 cell can never be served a cached
    // T=1 record, in either direction, even over a shared cache directory
    let dir = scratch_dir("temporal");

    // warm the cache with the base sweep's 7pt/A100/CUDA cells (all T=1)
    let base = experiments::sweep_with(&opts(64, &dir)).unwrap();
    let base_entries = cell_entries(&dir);
    assert!(!base_entries.is_empty());

    // a temporal sweep over the same directory must miss every cell —
    // temporal records live in their own `tcell` domain, so even a T=1
    // fused cell with an identical program cannot touch a base entry
    let misses_before = counter("sweep.cache.misses");
    let topts = SweepOptions::new(ExperimentParams { n: 64 }).cache_dir(&dir);
    let temporal = experiments::temporal_sweep_with(&topts).unwrap();
    assert!(
        counter("sweep.cache.misses") >= misses_before + temporal.records.len() as u64,
        "no temporal cell may be served from a base (T=1) entry"
    );
    assert_eq!(
        entries_with_prefix(&dir, "tcell-").len(),
        temporal.records.len(),
        "every temporal cell wrote its own tcell entry"
    );
    assert_eq!(
        cell_entries(&dir),
        base_entries,
        "the temporal sweep left every base entry untouched"
    );

    // and the base results are reproduced bit-for-bit from the shared
    // cache afterwards — temporal entries cannot satisfy base lookups
    let hits_before = counter("sweep.cache.hits");
    let base_again = experiments::sweep_with(&opts(64, &dir)).unwrap();
    assert!(counter("sweep.cache.hits") > hits_before);
    assert_eq!(
        serde_json::to_string(&base.records).unwrap(),
        serde_json::to_string(&base_again.records).unwrap()
    );

    // degree is visible in the data too: the fused launch moves different
    // bytes than the baseline, so any aliasing would be caught here
    let t1 = temporal
        .point(GpuKind::A100, ProgModel::Cuda, "7pt", 1)
        .unwrap();
    let t2 = temporal
        .point(GpuKind::A100, ProgModel::Cuda, "7pt", 2)
        .unwrap();
    assert_ne!(t1.dram_bytes, t2.dram_bytes);
    assert!(t2.ai > t1.ai);
    let _ = fs::remove_dir_all(&dir);
}

fn tune_opts(dir: &std::path::Path) -> brick_tuner::TuneOptions {
    let mut opts = brick_tuner::TuneOptions::new(64)
        .shapes(vec![brick_dsl::shape::StencilShape::star(1)])
        .targets(vec![brick_tuner::TuneTarget {
            arch: gpu_sim::GpuArch::a100(),
            model: ProgModel::Cuda,
        }])
        .space(brick_tuner::TuningSpace::minimal())
        .jobs(2);
    opts.cache_dir = Some(dir.to_path_buf());
    opts
}

fn tune_groups_json(opts: &brick_tuner::TuneOptions) -> String {
    let report = brick_tuner::tune_matrix(opts).expect("tune runs");
    serde_json::to_string(&report.groups).expect("groups serialize")
}

fn tune_cell_entries(dir: &PathBuf) -> Vec<String> {
    entries_with_prefix(dir, "tune-")
        .into_iter()
        .filter(|n| !n.starts_with("tune-roofline-"))
        .collect()
}

#[test]
fn tuner_entries_never_touch_sweep_entries() {
    // the tuner shares the sweep's cache directory but owns its `tune`
    // domain: warming one side must be invisible to the other
    let dir = scratch_dir("tune_domain");
    let base = experiments::sweep_with(&opts(64, &dir)).unwrap();
    let base_entries = cell_entries(&dir);
    assert!(!base_entries.is_empty());

    let cold = tune_groups_json(&tune_opts(&dir));
    assert!(
        !tune_cell_entries(&dir).is_empty(),
        "tune wrote its own entries"
    );
    assert_eq!(
        cell_entries(&dir),
        base_entries,
        "tuning left every sweep entry untouched"
    );

    // warm tune rerun: served from cache, byte-identical ranked tables
    let hits_before = counter("sweep.cache.hits");
    let warm = tune_groups_json(&tune_opts(&dir));
    assert!(counter("sweep.cache.hits") > hits_before);
    assert_eq!(cold, warm, "warm tune reproduces the cold ranked tables");

    // and the base sweep still reproduces bit-for-bit over the shared dir
    let base_again = experiments::sweep_with(&opts(64, &dir)).unwrap();
    assert_eq!(
        serde_json::to_string(&base.records).unwrap(),
        serde_json::to_string(&base_again.records).unwrap()
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_and_stale_tuner_entries_read_as_misses() {
    let dir = scratch_dir("tune_corrupt");
    let cold = tune_groups_json(&tune_opts(&dir));
    let entries = tune_cell_entries(&dir);
    assert!(!entries.is_empty());

    // torn writes: unparsable JSON
    for name in &entries {
        fs::write(dir.join(name), "{torn write").unwrap();
    }
    let corrupt_before = counter("sweep.cache.corrupt");
    assert_eq!(
        cold,
        tune_groups_json(&tune_opts(&dir)),
        "corrupt tuner entries never change results"
    );
    assert!(counter("sweep.cache.corrupt") > corrupt_before);

    // stale entries: well-formed JSON from a different (older) key scheme
    // — the embedded key description mismatches, so they read as misses
    for name in &entries {
        fs::write(dir.join(name), r#"{"desc":"tune;v0;ancient=1","value":{}}"#).unwrap();
    }
    let corrupt_before = counter("sweep.cache.corrupt");
    assert_eq!(
        cold,
        tune_groups_json(&tune_opts(&dir)),
        "stale tuner entries never change results"
    );
    assert!(
        counter("sweep.cache.corrupt") > corrupt_before,
        "description mismatch was detected, not served"
    );

    // both reruns repaired the files: one more run hits cleanly
    let hits_before = counter("sweep.cache.hits");
    let _ = tune_groups_json(&tune_opts(&dir));
    assert!(counter("sweep.cache.hits") > hits_before);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn specialized_cells_never_alias_pre_specialization_records() {
    // v4 made the specialization vector an explicit key field; the schema
    // bump must keep every v3-era file name out of reach of v4 lookups,
    // so a pre-specialization record can never satisfy a specialized cell
    use brick_codegen::SpecParams;
    use brick_dsl::shape::StencilShape;
    use brick_dsl::StencilAnalysis;
    use experiments::cache::{cell_key, spec_fingerprint, SIM_SCHEMA_VERSION};
    use experiments::KernelConfig;

    let arch = gpu_sim::GpuArch::a100();
    let spec =
        experiments::runner::build_spec(&StencilShape::star(1), KernelConfig::BricksCodegen, 32);
    let a = StencilAnalysis::of_shape(&StencilShape::star(1));
    let rl = roofline::Roofline {
        peak_gflops: 8000.0,
        bandwidth_gbs: 1500.0,
    };
    let v4 = cell_key(
        &spec,
        &arch,
        ProgModel::Cuda,
        64,
        a.flops_per_point,
        a.theoretical_ai,
        &rl,
        gpu_sim::SimFidelity::default(),
        1,
        &SpecParams::paper_default(32),
    );
    assert_eq!(SIM_SCHEMA_VERSION, 4, "key recipe below mirrors v3");
    assert!(v4.desc.contains(";spec="), "v4 keys carry the spec vector");

    // the exact v3 recipe: same fields, no spec fingerprint, version 3
    let v3 = brick_sweep::KeyBuilder::new("cell", 3)
        .fingerprint("kernel", spec_fingerprint(&spec))
        .fingerprint("arch", experiments::cache::arch_fingerprint(&arch))
        .field("model", ProgModel::Cuda)
        .field("n", 64usize)
        .field("flops", a.flops_per_point)
        .field("fidelity", gpu_sim::SimFidelity::default())
        .field("temporal", 1u32)
        .f64_bits("theory_ai", a.theoretical_ai)
        .f64_bits("rl_peak", rl.peak_gflops)
        .f64_bits("rl_bw", rl.bandwidth_gbs)
        .build();
    assert_ne!(v3.hash, v4.hash);
    assert_ne!(v3.file_name(), v4.file_name());

    // end to end: a poisoned v3-era file in the cache directory is never
    // read by a v4 sweep — the cell misses, recomputes, and matches an
    // uncached run bit-for-bit
    let dir = scratch_dir("v3_alias");
    fs::create_dir_all(&dir).unwrap();
    fs::write(dir.join(v3.file_name()), r#"{"desc":"poison","value":{}}"#).unwrap();
    let misses_before = counter("sweep.cache.misses");
    let cached = experiments::sweep_with(&opts(64, &dir)).unwrap();
    assert!(counter("sweep.cache.misses") > misses_before);
    let clean =
        experiments::sweep_with(&SweepOptions::new(ExperimentParams { n: 64 }).filter(one_cell()))
            .unwrap();
    assert_eq!(
        serde_json::to_string(&cached.records).unwrap(),
        serde_json::to_string(&clean.records).unwrap(),
        "the stale v3 record is unreachable and results are unchanged"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_entries_recompute_and_repair() {
    let dir = scratch_dir("corrupt");
    let cold = experiments::sweep_with(&opts(64, &dir)).unwrap();

    // mangle every cached cell
    for name in cell_entries(&dir) {
        fs::write(dir.join(name), "{torn write").unwrap();
    }
    let corrupt_before = counter("sweep.cache.corrupt");
    let repaired = experiments::sweep_with(&opts(64, &dir)).unwrap();
    assert!(
        counter("sweep.cache.corrupt") > corrupt_before,
        "corruption was noticed (and warned about via brick-obs)"
    );
    assert_eq!(
        serde_json::to_string(&cold.records).unwrap(),
        serde_json::to_string(&repaired.records).unwrap(),
        "corrupted cache never changes results"
    );

    // the rerun repaired the entries: a third run hits cleanly
    let hits_before = counter("sweep.cache.hits");
    let _ = experiments::sweep_with(&opts(64, &dir)).unwrap();
    assert!(counter("sweep.cache.hits") > hits_before);
    let _ = fs::remove_dir_all(&dir);
}
