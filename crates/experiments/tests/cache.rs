//! Sweep-level behaviour of the content-addressed result cache: entries
//! are keyed by everything the result depends on, invalidated by kernel
//! or simulation-config changes, and corruption degrades to a recompute
//! (with a repair) rather than a wrong or failed run. Key-construction
//! unit tests live in `experiments::cache`; the generic store's in
//! `brick_sweep::cache`.

use std::fs;
use std::path::PathBuf;

use experiments::{CellFilter, ExperimentParams, SweepOptions};
use gpu_sim::{GpuKind, ProgModel};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sweep_cache_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn one_cell() -> CellFilter {
    CellFilter {
        stencils: Some(vec!["7pt".into()]),
        gpus: Some(vec![GpuKind::A100]),
        models: Some(vec![ProgModel::Cuda]),
        configs: None,
    }
}

fn opts(n: usize, dir: &PathBuf) -> SweepOptions {
    SweepOptions::new(ExperimentParams { n })
        .cache_dir(dir)
        .filter(one_cell())
}

fn counter(name: &str) -> u64 {
    brick_obs::metrics::snapshot()
        .counters
        .iter()
        .find(|(k, _)| k == name)
        .map_or(0, |(_, v)| *v)
}

fn entries_with_prefix(dir: &PathBuf, prefix: &str) -> Vec<String> {
    let mut names: Vec<String> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|n| n.starts_with(prefix))
        .collect();
    names.sort();
    names
}

fn cell_entries(dir: &PathBuf) -> Vec<String> {
    entries_with_prefix(dir, "cell-")
}

#[test]
fn entries_are_stable_across_runs_and_invalidated_by_config_change() {
    let dir = scratch_dir("invalidation");
    let s64 = experiments::sweep_with(&opts(64, &dir)).unwrap();
    let after_cold = cell_entries(&dir);
    assert!(!after_cold.is_empty());

    // same config, new run: same keys, nothing new written
    let s64b = experiments::sweep_with(&opts(64, &dir)).unwrap();
    assert_eq!(cell_entries(&dir), after_cold, "stable keys across runs");
    assert_eq!(
        serde_json::to_string(&s64.records).unwrap(),
        serde_json::to_string(&s64b.records).unwrap()
    );

    // a simulation-config change (domain size) misses every old entry
    let misses_before = counter("sweep.cache.misses");
    let _s128 = experiments::sweep_with(&opts(128, &dir)).unwrap();
    assert!(
        counter("sweep.cache.misses") > misses_before,
        "changed config cannot be served from old entries"
    );
    assert!(
        cell_entries(&dir).len() > after_cold.len(),
        "changed config wrote new entries instead of overwriting"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn temporal_degrees_never_alias_in_the_cache() {
    // the satellite invariant: a T=2 cell can never be served a cached
    // T=1 record, in either direction, even over a shared cache directory
    let dir = scratch_dir("temporal");

    // warm the cache with the base sweep's 7pt/A100/CUDA cells (all T=1)
    let base = experiments::sweep_with(&opts(64, &dir)).unwrap();
    let base_entries = cell_entries(&dir);
    assert!(!base_entries.is_empty());

    // a temporal sweep over the same directory must miss every cell —
    // temporal records live in their own `tcell` domain, so even a T=1
    // fused cell with an identical program cannot touch a base entry
    let misses_before = counter("sweep.cache.misses");
    let topts = SweepOptions::new(ExperimentParams { n: 64 }).cache_dir(&dir);
    let temporal = experiments::temporal_sweep_with(&topts).unwrap();
    assert!(
        counter("sweep.cache.misses") >= misses_before + temporal.records.len() as u64,
        "no temporal cell may be served from a base (T=1) entry"
    );
    assert_eq!(
        entries_with_prefix(&dir, "tcell-").len(),
        temporal.records.len(),
        "every temporal cell wrote its own tcell entry"
    );
    assert_eq!(
        cell_entries(&dir),
        base_entries,
        "the temporal sweep left every base entry untouched"
    );

    // and the base results are reproduced bit-for-bit from the shared
    // cache afterwards — temporal entries cannot satisfy base lookups
    let hits_before = counter("sweep.cache.hits");
    let base_again = experiments::sweep_with(&opts(64, &dir)).unwrap();
    assert!(counter("sweep.cache.hits") > hits_before);
    assert_eq!(
        serde_json::to_string(&base.records).unwrap(),
        serde_json::to_string(&base_again.records).unwrap()
    );

    // degree is visible in the data too: the fused launch moves different
    // bytes than the baseline, so any aliasing would be caught here
    let t1 = temporal
        .point(GpuKind::A100, ProgModel::Cuda, "7pt", 1)
        .unwrap();
    let t2 = temporal
        .point(GpuKind::A100, ProgModel::Cuda, "7pt", 2)
        .unwrap();
    assert_ne!(t1.dram_bytes, t2.dram_bytes);
    assert!(t2.ai > t1.ai);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_entries_recompute_and_repair() {
    let dir = scratch_dir("corrupt");
    let cold = experiments::sweep_with(&opts(64, &dir)).unwrap();

    // mangle every cached cell
    for name in cell_entries(&dir) {
        fs::write(dir.join(name), "{torn write").unwrap();
    }
    let corrupt_before = counter("sweep.cache.corrupt");
    let repaired = experiments::sweep_with(&opts(64, &dir)).unwrap();
    assert!(
        counter("sweep.cache.corrupt") > corrupt_before,
        "corruption was noticed (and warned about via brick-obs)"
    );
    assert_eq!(
        serde_json::to_string(&cold.records).unwrap(),
        serde_json::to_string(&repaired.records).unwrap(),
        "corrupted cache never changes results"
    );

    // the rerun repaired the entries: a third run hits cleanly
    let hits_before = counter("sweep.cache.hits");
    let _ = experiments::sweep_with(&opts(64, &dir)).unwrap();
    assert!(counter("sweep.cache.hits") > hits_before);
    let _ = fs::remove_dir_all(&dir);
}
