//! Schedule- and cache-independence of the sweep engine.
//!
//! The determinism contract (see `runner.rs`): for a fixed configuration
//! the serialized records are byte-identical at **any** jobs count, and a
//! cache-warm rerun equals the cold run that populated the cache. The
//! property test drives random sub-matrices through `--jobs 1/2/8`; the
//! cache test compares cold vs warm byte-for-byte.

use std::fs;
use std::path::PathBuf;

use experiments::{CellFilter, ExperimentParams, KernelConfig, SweepOptions};
use gpu_sim::{GpuKind, ProgModel, SimFidelity};
use proptest::prelude::*;

/// Records serialized exactly as artifact writers see them.
fn records_json(opts: &SweepOptions) -> String {
    let sweep = experiments::sweep_with(opts).expect("sweep runs");
    serde_json::to_string(&sweep.records).expect("records serialize")
}

/// Build a non-empty sub-matrix filter from per-axis selection masks
/// (a zero mask selects the full axis).
fn filter_from_masks(smask: u8, gmask: u8, mmask: u8, cmask: u8) -> CellFilter {
    let pick =
        |mask: u8, n: usize| -> Vec<usize> { (0..n).filter(|i| mask & (1 << i) != 0).collect() };
    let stencils = ["7pt", "13pt", "19pt", "25pt", "27pt", "125pt"];
    let gpus = [GpuKind::A100, GpuKind::Mi250xGcd, GpuKind::PvcStack];
    let models = [ProgModel::Cuda, ProgModel::Hip, ProgModel::Sycl];
    let configs = KernelConfig::all();
    CellFilter {
        stencils: (smask != 0).then(|| {
            pick(smask, 6)
                .iter()
                .map(|&i| stencils[i].to_string())
                .collect()
        }),
        gpus: (gmask != 0).then(|| pick(gmask, 3).iter().map(|&i| gpus[i]).collect()),
        models: (mmask != 0).then(|| pick(mmask, 3).iter().map(|&i| models[i]).collect()),
        configs: (cmask != 0).then(|| pick(cmask, 3).iter().map(|&i| configs[i]).collect()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn random_sub_matrices_are_schedule_independent(
        smask in 0u8..64,
        gmask in 0u8..8,
        mmask in 0u8..8,
        cmask in 0u8..8,
    ) {
        let filter = filter_from_masks(smask, gmask, mmask, cmask);
        // pinned to the fast (block-class) fidelity: the production
        // default must be schedule-independent like the exact oracle
        let opts = |jobs: usize| {
            SweepOptions::new(ExperimentParams { n: 64 })
                .jobs(jobs)
                .filter(filter.clone())
                .fidelity(SimFidelity::Fast)
        };
        let serial = records_json(&opts(1));
        let two = records_json(&opts(2));
        let eight = records_json(&opts(8));
        prop_assert_eq!(&serial, &two, "jobs=2 diverged from serial");
        prop_assert_eq!(&serial, &eight, "jobs=8 diverged from serial");
    }
}

#[test]
fn fast_and_exact_sweeps_are_byte_identical() {
    // the fidelity contract at the record level: every serialized field —
    // gflops, ai, byte counts, occupancy — agrees to the last byte, on a
    // sub-matrix spanning both kernel families and all platforms
    let filter = CellFilter {
        stencils: Some(vec!["7pt".to_string(), "125pt".to_string()]),
        ..CellFilter::default()
    };
    let run = |fidelity: SimFidelity| {
        records_json(
            &SweepOptions::new(ExperimentParams { n: 64 })
                .jobs(4)
                .filter(filter.clone())
                .fidelity(fidelity),
        )
    };
    assert_eq!(
        run(SimFidelity::Fast),
        run(SimFidelity::Exact),
        "fast records must reproduce exact records bit-for-bit"
    );
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sweep_determinism_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn counter(name: &str) -> u64 {
    brick_obs::metrics::snapshot()
        .counters
        .iter()
        .find(|(k, _)| k == name)
        .map_or(0, |(_, v)| *v)
}

/// Temporal records serialized exactly as artifact writers see them.
fn temporal_records_json(opts: &SweepOptions) -> String {
    let sweep = experiments::temporal_sweep_with(opts).expect("temporal sweep runs");
    serde_json::to_string(&sweep.records).expect("records serialize")
}

#[test]
fn temporal_sweep_is_jobs_independent() {
    // the fused matrix under the same contract as the base sweep: the
    // serialized records are byte-identical at any worker count
    let opts = |jobs: usize| {
        SweepOptions::new(ExperimentParams { n: 64 })
            .jobs(jobs)
            .fidelity(SimFidelity::Fast)
    };
    let serial = temporal_records_json(&opts(1));
    let two = temporal_records_json(&opts(2));
    let eight = temporal_records_json(&opts(8));
    assert_eq!(serial, two, "temporal jobs=2 diverged from serial");
    assert_eq!(serial, eight, "temporal jobs=8 diverged from serial");
}

#[test]
fn temporal_cache_warm_rerun_is_byte_identical_to_cold() {
    let dir = scratch_dir("temporal_warm");
    let opts = SweepOptions::new(ExperimentParams { n: 64 })
        .jobs(4)
        .cache_dir(&dir);

    let cold = temporal_records_json(&opts);
    let entries = fs::read_dir(&dir).unwrap().count();
    assert!(entries > 0, "cold temporal run populated the cache");

    let hits_before = counter("sweep.cache.hits");
    let warm = temporal_records_json(&opts);
    assert_eq!(
        cold, warm,
        "warm temporal rerun must reproduce the cold run"
    );
    assert!(
        counter("sweep.cache.hits") > hits_before,
        "warm temporal rerun served from the cache"
    );

    let uncached = temporal_records_json(&SweepOptions::new(ExperimentParams { n: 64 }).jobs(4));
    assert_eq!(cold, uncached, "caching is invisible in temporal output");
    let _ = fs::remove_dir_all(&dir);
}

/// Tune report groups serialized exactly as artifact writers see them.
fn tune_groups_json(opts: &brick_tuner::TuneOptions) -> String {
    let report = brick_tuner::tune_matrix(opts).expect("tune runs");
    serde_json::to_string(&report.groups).expect("groups serialize")
}

fn small_tune(jobs: usize) -> brick_tuner::TuneOptions {
    // the golden configuration's shape: one group over the smoke space —
    // big enough to exercise pruning, ranking and the kernel-program
    // memo, small enough to run three times in a test
    brick_tuner::TuneOptions::new(64)
        .shapes(vec![brick_dsl::shape::StencilShape::star(1)])
        .targets(vec![brick_tuner::TuneTarget {
            arch: gpu_sim::GpuArch::a100(),
            model: gpu_sim::ProgModel::Cuda,
        }])
        .space(brick_tuner::TuningSpace::smoke())
        .jobs(jobs)
}

#[test]
fn tune_ranked_tables_are_jobs_independent() {
    // the tuner's determinism contract: the serialized ranked tables —
    // winner, order, every float — are byte-identical at any worker
    // count; ties broken by specialization fingerprint, never by arrival
    let serial = tune_groups_json(&small_tune(1));
    let two = tune_groups_json(&small_tune(2));
    let eight = tune_groups_json(&small_tune(8));
    assert_eq!(serial, two, "tune jobs=2 diverged from serial");
    assert_eq!(serial, eight, "tune jobs=8 diverged from serial");
}

#[test]
fn tune_cache_warm_rerun_is_byte_identical_to_cold() {
    let dir = scratch_dir("tune_warm");
    let with_cache = |jobs: usize| {
        let mut opts = small_tune(jobs);
        opts.cache_dir = Some(dir.clone());
        opts
    };

    let cold = tune_groups_json(&with_cache(4));
    assert!(
        fs::read_dir(&dir).unwrap().count() > 0,
        "cold tune populated the cache"
    );

    let hits_before = counter("sweep.cache.hits");
    let warm = tune_groups_json(&with_cache(4));
    assert_eq!(cold, warm, "warm tune rerun must reproduce the cold run");
    assert!(
        counter("sweep.cache.hits") > hits_before,
        "warm tune rerun served from the cache"
    );

    // cache-warm results under a different schedule, and with no cache at
    // all, still agree — neither caching nor parallelism is observable
    let warm_serial = tune_groups_json(&with_cache(1));
    assert_eq!(cold, warm_serial, "warm serial tune diverged");
    let uncached = tune_groups_json(&small_tune(4));
    assert_eq!(cold, uncached, "caching is invisible in tune output");
    let _ = fs::remove_dir_all(&dir);
}

/// One group over a space whose only free axes are memory ordering and
/// strategy. Pruning off and `top_k` large, so every measured candidate
/// appears in the ranked table.
fn ordering_tune(
    orderings: Vec<brick_core::BrickOrdering>,
    jobs: usize,
) -> brick_tuner::TuneOptions {
    let space = brick_tuner::TuningSpace {
        vector_widths: vec![16, 32, 64],
        fold_factors: vec![1],
        block_yz: vec![(4, 4)],
        orderings,
        strategies: vec![
            brick_codegen::Strategy::Gather,
            brick_codegen::Strategy::Scatter,
        ],
        interleave_chunks: vec![1024],
        temporal_degrees: vec![1],
    };
    brick_tuner::TuneOptions::new(64)
        .shapes(vec![brick_dsl::shape::StencilShape::star(1)])
        .targets(vec![brick_tuner::TuneTarget {
            arch: gpu_sim::GpuArch::a100(),
            model: gpu_sim::ProgModel::Cuda,
        }])
        .space(space)
        .prune(false)
        .top_k(64)
        .jobs(jobs)
}

#[test]
fn tune_orderings_never_share_memory_counters() {
    use brick_core::BrickOrdering;
    // Candidates differing only in ordering share one generated program
    // (one kernel fingerprint) but trace different geometries, so the
    // tuner's in-run memory-counter memo must keep them apart: each
    // record in a combined Lexicographic+Morton run must be identical to
    // the record the same candidate gets in a run of its ordering alone,
    // and the combined run must be schedule-independent.
    let both = |jobs| {
        brick_tuner::tune_matrix(&ordering_tune(
            vec![BrickOrdering::Lexicographic, BrickOrdering::Morton],
            jobs,
        ))
        .expect("tune runs")
    };
    let serial = both(1);
    for jobs in [2, 8] {
        assert_eq!(
            serde_json::to_string(&serial.groups).unwrap(),
            serde_json::to_string(&both(jobs).groups).unwrap(),
            "mixed-ordering tune at jobs={jobs} diverged from serial"
        );
    }

    let solo: Vec<brick_tuner::TuneGroup> = [BrickOrdering::Lexicographic, BrickOrdering::Morton]
        .into_iter()
        .map(|o| {
            brick_tuner::tune_matrix(&ordering_tune(vec![o], 1))
                .expect("tune runs")
                .groups
                .remove(0)
        })
        .collect();
    let group = &serial.groups[0];
    let mut per_ordering = [0usize; 2];
    for rec in &group.ranked {
        let oi = (rec.params.ordering == brick_core::BrickOrdering::Morton) as usize;
        per_ordering[oi] += 1;
        let reference = solo[oi]
            .ranked
            .iter()
            .find(|r| r.fingerprint == rec.fingerprint)
            .expect("candidate present in its single-ordering run");
        assert_eq!(
            serde_json::to_string(rec).unwrap(),
            serde_json::to_string(reference).unwrap(),
            "record for {} diverged from its single-ordering run",
            rec.params
        );
    }
    assert!(
        per_ordering.iter().all(|&n| n > 0),
        "both orderings measured: {per_ordering:?}"
    );
}

#[test]
fn cache_warm_rerun_is_byte_identical_to_cold() {
    let dir = scratch_dir("warm");
    let opts = SweepOptions::new(ExperimentParams { n: 64 })
        .jobs(4)
        .cache_dir(&dir);

    let cold = records_json(&opts);
    let entries = fs::read_dir(&dir).unwrap().count();
    assert!(entries > 0, "cold run populated the cache");

    let hits_before = counter("sweep.cache.hits");
    let warm = records_json(&opts);
    assert_eq!(cold, warm, "warm rerun must reproduce the cold run exactly");
    assert!(
        counter("sweep.cache.hits") > hits_before,
        "warm rerun served from the cache"
    );

    // and a cache-free run still agrees — caching is invisible in output
    let uncached = records_json(&SweepOptions::new(ExperimentParams { n: 64 }).jobs(4));
    assert_eq!(cold, uncached);
    let _ = fs::remove_dir_all(&dir);
}
