//! The profile-tree structure contract: the merged profile of a sweep is
//! byte-identical at any `--jobs` count, and the runner's phase spans
//! attribute ≥95% of a cold sweep's wall time.
//!
//! One `#[test]` function on purpose: the span store is process-global,
//! so the three captures must run sequentially in a known order.
//!
//! The compared structure is the *deterministic skeleton* — the span
//! categories the runner emits unconditionally (`sweep`, `sched`, `cell`,
//! `phase`, `record`). Deeper spans (e.g. `memory-sim:*` inside the
//! simulate phase) are attached to whichever racing cell computed the
//! shared memo first; the memo contract guarantees identical *values* at
//! any schedule, but the span legitimately moves between equivalent
//! parents, so it is pruned before comparison.

use brick_prof::{ProfileNode, ProfileTree, SweepProfile};
use experiments::{sweep_with, ExperimentParams, SweepOptions};

/// Keep only the runner's unconditional span categories (dropping a node
/// drops its subtree).
fn prune(nodes: &[ProfileNode]) -> Vec<ProfileNode> {
    const KEEP: &[&str] = &["sweep", "sched", "cell", "phase", "record"];
    nodes
        .iter()
        .filter(|n| KEEP.contains(&n.cat.as_str()))
        .map(|n| ProfileNode {
            children: prune(&n.children),
            ..n.clone()
        })
        .collect()
}

#[test]
fn profile_structure_is_jobs_invariant_and_attribution_covers_the_sweep() {
    brick_prof::init();
    brick_obs::set_tracing(true);

    let mut skeletons: Vec<(usize, String)> = Vec::new();
    for jobs in [1usize, 2, 8] {
        brick_obs::clear_spans();
        let opts = SweepOptions::new(ExperimentParams { n: 64 }).jobs(jobs);
        let sweep = sweep_with(&opts).expect("sweep runs");
        assert_eq!(sweep.records.len(), 6 * 3 * 6);
        assert_eq!(sweep.manifest.jobs, Some(jobs as u64));
        assert_eq!(sweep.manifest.fidelity.as_deref(), Some("fast"));
        // no cache configured: every cell misses nothing, hits nothing
        assert_eq!(sweep.manifest.cache_hits, 0);
        assert_eq!(sweep.manifest.cache_misses, 0);

        let spans = brick_obs::trace::spans_data();
        if jobs == 1 {
            // acceptance bar: ≥95% of a cold serial sweep's wall time is
            // attributed to named phases
            let profile = SweepProfile::from_spans(&spans);
            assert!(
                profile.attributed_frac >= 0.95,
                "attributed only {:.1}% of wall time\nphases: {:?}",
                profile.attributed_frac * 100.0,
                profile
                    .phases
                    .iter()
                    .map(|p| (&p.name, p.total_ns))
                    .collect::<Vec<_>>()
            );
            // and every runner phase actually appears
            for phase in ["rooflines", "lint-verify", "compile", "simulate", "score"] {
                assert!(
                    profile.phases.iter().any(|p| p.name == phase),
                    "phase {phase} missing from {:?}",
                    profile.phases.iter().map(|p| &p.name).collect::<Vec<_>>()
                );
            }
        }

        let tree = ProfileTree::build(&spans);
        let skeleton = ProfileTree {
            roots: prune(&tree.roots),
        }
        .structure_string();
        assert!(
            skeleton.contains("sweep:64^3;sweep.cells;sweep.cells[*]"),
            "cells not re-parented under the scheduler span:\n{skeleton}"
        );
        skeletons.push((jobs, skeleton));
    }
    brick_obs::set_tracing(false);
    brick_obs::clear_spans();

    let (_, reference) = &skeletons[0];
    for (jobs, skeleton) in &skeletons[1..] {
        assert_eq!(
            skeleton, reference,
            "profile structure differs between --jobs 1 and --jobs {jobs}"
        );
    }
}
