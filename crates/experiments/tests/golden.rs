//! Golden-artifact regression suite.
//!
//! Runs a fresh sweep at the pinned golden domain size and compares the
//! rendered artifacts (Table 4, the A100/CUDA Roofline panel, Table 3)
//! against the files checked in under `tests/golden/`. Integer columns
//! must match exactly, floats to 1e-9 relative tolerance — this is the
//! suite that proves the parallel/incremental sweep engine changes
//! nothing.
//!
//! On a mismatch the fresh artifacts and the full diff list are written
//! to `target/golden-diff/` so CI can upload them; after an intentional
//! model change regenerate the goldens with
//! `cargo run -p experiments -- --bless`.

use std::fs;
use std::path::Path;

use experiments::{golden, ExperimentParams, SweepOptions};
use gpu_sim::SimFidelity;

#[test]
fn fresh_sweep_matches_checked_in_goldens() {
    let sweep = experiments::sweep_with(&SweepOptions::new(ExperimentParams {
        n: golden::GOLDEN_N,
    }))
    .expect("golden sweep runs");
    let diffs = golden::check(&sweep, &golden::golden_dir());
    if diffs.is_empty() {
        return;
    }
    // leave the evidence where CI can pick it up as an artifact
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/golden-diff");
    let _ = fs::create_dir_all(&out);
    for (name, actual) in golden::golden_artifacts(&sweep) {
        let _ = fs::write(out.join(format!("actual-{name}")), actual);
    }
    let _ = fs::write(out.join("diff.txt"), diffs.join("\n"));
    panic!(
        "golden artifacts diverged (fresh copies in {}):\n{}",
        out.display(),
        diffs.join("\n")
    );
}

#[test]
fn goldens_hold_in_both_fidelity_modes() {
    // the checked-in goldens are fidelity-neutral: the exact oracle and
    // the fast block-class replay must both reproduce them, which pins
    // the bit-identical contract to the shipped artifacts themselves
    for fidelity in [SimFidelity::Exact, SimFidelity::Fast] {
        let sweep = experiments::sweep_with(
            &SweepOptions::new(ExperimentParams {
                n: golden::GOLDEN_N,
            })
            .fidelity(fidelity),
        )
        .expect("golden sweep runs");
        let diffs = golden::check(&sweep, &golden::golden_dir());
        assert!(
            diffs.is_empty(),
            "{fidelity} fidelity diverged from goldens:\n{}",
            diffs.join("\n")
        );
    }
}

#[test]
fn fresh_temporal_sweep_matches_checked_in_goldens() {
    // the temporal AI-vs-T and DRAM-vs-T tables, pinned the same way as
    // the spatial artifacts: a fresh fused sweep must reproduce them
    let sweep = experiments::temporal_sweep_with(&SweepOptions::new(ExperimentParams {
        n: golden::GOLDEN_N,
    }))
    .expect("temporal golden sweep runs");
    let diffs = golden::check_temporal(&sweep, &golden::golden_dir());
    if diffs.is_empty() {
        return;
    }
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/golden-diff");
    let _ = fs::create_dir_all(&out);
    for (name, actual) in golden::temporal_artifacts(&sweep) {
        let _ = fs::write(out.join(format!("actual-{name}")), actual);
    }
    let _ = fs::write(out.join("temporal-diff.txt"), diffs.join("\n"));
    panic!(
        "temporal golden artifacts diverged (fresh copies in {}):\n{}",
        out.display(),
        diffs.join("\n")
    );
}

#[test]
fn fresh_tune_matches_checked_in_golden() {
    // the blessed tuner table: a fresh smoke-space tune of the 7-point
    // star on A100/CUDA must reproduce tune_star7_a100.json — winners,
    // order, fingerprints (exact) and performance columns (1e-9)
    let report = brick_tuner::tune_matrix(&experiments::tune::golden_tune_options(None, None))
        .expect("golden tune runs");
    let diffs = golden::check_tune(&report, &golden::golden_dir());
    if diffs.is_empty() {
        return;
    }
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/golden-diff");
    let _ = fs::create_dir_all(&out);
    for (name, actual) in golden::tune_artifacts(&report) {
        let _ = fs::write(out.join(format!("actual-{name}")), actual);
    }
    let _ = fs::write(out.join("tune-diff.txt"), diffs.join("\n"));
    panic!(
        "tuner golden artifact diverged (fresh copy in {}):\n{}",
        out.display(),
        diffs.join("\n")
    );
}

#[test]
fn tune_golden_is_jobs_count_independent() {
    let report = brick_tuner::tune_matrix(&experiments::tune::golden_tune_options(Some(1), None))
        .expect("serial golden tune runs");
    let diffs = golden::check_tune(&report, &golden::golden_dir());
    assert!(
        diffs.is_empty(),
        "serial tune diverged from golden:\n{}",
        diffs.join("\n")
    );
}

#[test]
fn temporal_goldens_are_jobs_count_independent() {
    let sweep = experiments::temporal_sweep_with(
        &SweepOptions::new(ExperimentParams {
            n: golden::GOLDEN_N,
        })
        .jobs(1),
    )
    .expect("serial temporal golden sweep runs");
    let diffs = golden::check_temporal(&sweep, &golden::golden_dir());
    assert!(
        diffs.is_empty(),
        "serial temporal sweep diverged:\n{}",
        diffs.join("\n")
    );
}

#[test]
fn goldens_are_jobs_count_independent() {
    // the golden check above runs at the default jobs count; pin the
    // serial schedule against the same files so a determinism bug cannot
    // hide behind a lucky default
    let sweep = experiments::sweep_with(
        &SweepOptions::new(ExperimentParams {
            n: golden::GOLDEN_N,
        })
        .jobs(1),
    )
    .expect("serial golden sweep runs");
    let diffs = golden::check(&sweep, &golden::golden_dir());
    assert!(
        diffs.is_empty(),
        "serial sweep diverged:\n{}",
        diffs.join("\n")
    );
}
