//! The temporal-blocking sweep: AN5D's headline experiment on the
//! simulated substrate.
//!
//! For every paper stencil and every feasible fusion degree `T` (the
//! default 4×4 block caps `T·r` at 4 per transverse axis), generate the
//! `T`-fused bricks kernel ([`brick_codegen::CodegenOptions::temporal_degree`]),
//! statically verify it against the `T`-fold composed stencil
//! ([`brick_lint::ExpectedStencil::resolve_temporal`]), and simulate it
//! over the paper's (GPU, model) matrix.
//!
//! The headline metrics:
//!
//! - **Arithmetic intensity scales with `T`**: one fused launch applies
//!   `T` timesteps' worth of useful FLOPs while streaming the grid
//!   through DRAM roughly once, so `AI ≈ T · AI(T=1)` minus halo
//!   overhead.
//! - **DRAM bytes per applied timestep shrink like `1/T`**:
//!   [`TemporalRecord::dram_bytes_per_point`] divides the launch's DRAM
//!   traffic by `n³·T` — the paper-suite acceptance bound is
//!   `star-7 @ T=4 ≤ 0.45×` its `T=1` value.
//!
//! FLOP accounting follows the base sweep's §4.4 convention, scaled by
//! the work actually applied: the normalised count for a `T`-fused cell
//! is `T ×` the symmetry-minimal per-step count. Redundant halo FLOPs
//! (the price of fusion) appear only in the simulated execution time,
//! exactly as they would on hardware.
//!
//! Determinism and caching mirror [`crate::runner`]: cells are pure,
//! memoisation is value-deterministic, records are byte-identical at any
//! jobs count, and every cell is cached under a key that includes the
//! fusion degree (see [`crate::cache`]) so a `T=2` cell can never be
//! served a cached `T=1` record.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use serde::{Deserialize, Serialize};

use crate::cache::temporal_cell_key;
use crate::runner::{build_geometry, measure_rooflines, SweepError, SweepOptions};
use brick_codegen::{generate, CodegenOptions, LayoutKind, Strategy};
use brick_dsl::shape::StencilShape;
use brick_dsl::StencilAnalysis;
use brick_sweep::{map_cells, CacheOutcome, DiskCache};
use brick_vm::{KernelSpec, TraceGeometry};
use gpu_sim::{
    assemble, compile_only, simulate_memory_opts, GpuArch, GpuKind, MemCounters, ProgModel,
    SimFidelity, SimOptions,
};

/// Transverse block extent the fusion degree is feasibility-checked
/// against (`BrickDims::for_simd_width` always yields 4×4 across y/z).
const BLOCK_YZ: u32 = 4;

/// Fusion degrees worth sweeping for a shape: every `T` whose composed
/// reach `T·r` still fits the transverse block extent. star-1/cube-1
/// sweep `1..=4`, star-2/cube-2 `1..=2`, star-3/star-4 are spatial-only.
pub fn feasible_degrees(shape: &StencilShape) -> std::ops::RangeInclusive<u32> {
    1..=(BLOCK_YZ / shape.radius).max(1)
}

/// One measured point of the temporal study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TemporalRecord {
    /// Stencil shape.
    pub shape: StencilShape,
    /// Paper label (`"7pt"` … `"125pt"`).
    pub stencil: String,
    /// Timesteps fused into the simulated launch (1 = spatial baseline).
    pub temporal_degree: u32,
    /// GPU.
    pub gpu: GpuKind,
    /// Programming model.
    pub model: ProgModel,
    /// GFLOP/s at the normalised FLOP count (`T ×` the per-step count).
    pub gflops: f64,
    /// Empirical arithmetic intensity (normalised FLOPs / DRAM bytes).
    pub ai: f64,
    /// HBM data movement of the fused launch, bytes.
    pub dram_bytes: u64,
    /// DRAM bytes per interior point **per applied timestep**
    /// (`dram_bytes / (points · T)`) — the AN5D scaling metric.
    pub dram_bytes_per_point: f64,
    /// L1 data movement in bytes.
    pub l1_bytes: u64,
    /// L2 data movement in bytes.
    pub l2_bytes: u64,
    /// Kernel time in seconds.
    pub time_s: f64,
    /// Occupancy fraction.
    pub occupancy: f64,
    /// Registers per thread.
    pub regs_per_thread: u32,
    /// Whether the compiler spilled.
    pub spilled: bool,
    /// Limiting resource.
    pub limiter: String,
}

/// A complete temporal sweep plus provenance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TemporalSweep {
    /// Parameters the sweep ran with.
    pub params: crate::config::ExperimentParams,
    /// All measured points, in canonical order: stencil → degree →
    /// architecture → (gpu, model) pair.
    pub records: Vec<TemporalRecord>,
    /// Provenance manifest (includes the swept degrees).
    pub manifest: brick_obs::RunManifest,
}

impl TemporalSweep {
    /// The unique record for an exact point.
    pub fn point(
        &self,
        gpu: GpuKind,
        model: ProgModel,
        stencil: &str,
        t: u32,
    ) -> Option<&TemporalRecord> {
        self.records.iter().find(|r| {
            r.gpu == gpu && r.model == model && r.stencil == stencil && r.temporal_degree == t
        })
    }

    /// All records of one stencil on one platform, ordered by degree.
    pub fn series(&self, gpu: GpuKind, model: ProgModel, stencil: &str) -> Vec<&TemporalRecord> {
        let mut v: Vec<&TemporalRecord> = self
            .records
            .iter()
            .filter(|r| r.gpu == gpu && r.model == model && r.stencil == stencil)
            .collect();
        v.sort_by_key(|r| r.temporal_degree);
        v
    }
}

/// Build the `T`-fused bricks-codegen spec for a shape at a SIMD width.
///
/// All degrees (including `T = 1`) use the gather schedule, so the only
/// variable along a degree series is the fusion itself — never the
/// spatial schedule.
pub fn build_temporal_spec(shape: &StencilShape, width: usize, t: u32) -> KernelSpec {
    let st = shape.stencil();
    let b = st.default_bindings();
    KernelSpec::Vector(
        generate(
            &st,
            &b,
            LayoutKind::Brick,
            width,
            CodegenOptions {
                temporal_degree: t,
                strategy: Strategy::Gather,
                ..CodegenOptions::default()
            },
        )
        .expect("feasible degrees are within codegen limits"),
    )
}

/// Statically verify a fused spec against the `T`-fold composed stencil,
/// memoised by kernel fingerprint. Panics with the rendered report on
/// rejection — a fused kernel the footprint verifier cannot prove has no
/// business producing paper numbers.
pub fn verify_temporal_spec(
    spec: &KernelSpec,
    shape: &StencilShape,
    t: u32,
    cache: &brick_lint::FingerprintCache,
) {
    let KernelSpec::Vector(k) = spec else { return };
    let fp = brick_lint::fingerprint(k);
    if cache.check_or_insert(fp) {
        brick_obs::counter_add("sweep.lint_cache_hits", 1);
        return;
    }
    let _span = brick_obs::span_cat(format!("lint:temporal:{}", k.name), "lint");
    let st = shape.stencil();
    let b = st.default_bindings();
    let opts = brick_lint::LintOptions {
        expected: Some(
            brick_lint::ExpectedStencil::resolve_temporal(&st, &b, t)
                .expect("paper bindings resolve"),
        ),
        // no register budgets: fused kernels legitimately hold T levels of
        // planes live, and the compiler model prices the resulting
        // pressure (spills, occupancy) honestly in the simulation
        budgets: vec![],
    };
    let analysis = brick_lint::analyze(k, &opts);
    assert!(
        analysis.is_clean(),
        "fused kernel failed static verification against the T={t} composition:\n{}",
        analysis.report.render(Some(k))
    );
    brick_obs::counter_add("sweep.lint_verified", 1);
}

/// One unit of temporal sweep work.
#[derive(Debug, Clone)]
struct TCell {
    shape: StencilShape,
    stencil: String,
    t: u32,
    gpu: GpuKind,
    model: ProgModel,
    /// Normalised FLOPs per point for the fused launch (`T ×` per-step).
    flops_per_point: u64,
    /// Composed theoretical AI (`T ×` the per-step Table 4 value).
    theoretical_ai: f64,
}

fn flatten_cells() -> Vec<TCell> {
    let matrix = ProgModel::paper_matrix();
    let mut cells = Vec::new();
    for shape in StencilShape::paper_suite() {
        let analysis = StencilAnalysis::of_shape(&shape);
        for t in feasible_degrees(&shape) {
            for arch in GpuArch::table() {
                for &(gpu, model) in &matrix {
                    if gpu != arch.kind {
                        continue;
                    }
                    cells.push(TCell {
                        shape,
                        stencil: shape.label(),
                        t,
                        gpu,
                        model,
                        flops_per_point: analysis.flops_per_point * t as u64,
                        theoretical_ai: analysis.theoretical_ai * t as f64,
                    });
                }
            }
        }
    }
    cells
}

/// Run the temporal study matrix — every paper stencil × every feasible
/// fusion degree × the paper's 6 (GPU, model) pairs, bricks codegen —
/// with the same parallelism, caching and determinism contract as
/// [`crate::runner::sweep_with`]. The `filter` field of the options is
/// ignored (the temporal matrix is its own selection).
pub fn temporal_sweep_with(opts: &SweepOptions) -> Result<TemporalSweep, SweepError> {
    opts.params.validate().map_err(SweepError::InvalidParams)?;
    let sweep_start = std::time::Instant::now();
    let manifest = brick_obs::RunManifest::begin(
        &serde_json::to_string(&opts.params).expect("params serialize"),
    );
    let _span = brick_obs::span_cat(format!("temporal-sweep:{}^3", opts.params.n), "sweep");
    let n = opts.params.n;
    let cache_counters = || {
        (
            brick_obs::counter_value("sweep.cache.hits"),
            brick_obs::counter_value("sweep.cache.misses"),
            brick_obs::counter_value("sweep.cache.corrupt"),
        )
    };
    let cache_before = cache_counters();

    let cache = match &opts.cache_dir {
        Some(dir) => Some(DiskCache::open(dir).map_err(|e| SweepError::Cache(e.to_string()))?),
        None => None,
    };

    let rooflines = measure_rooflines(cache.as_ref());
    let cells = flatten_cells();
    brick_obs::info!(
        "temporal sweep: {} cells at n={n} across {} rooflines",
        cells.len(),
        rooflines.len()
    );

    // Phase 1 — build and verify each distinct fused program once
    // (distinct = (stencil, SIMD width, degree)).
    let lint_memo = brick_lint::FingerprintCache::new();
    let mut spec_jobs: Vec<(StencilShape, usize, u32)> = Vec::new();
    for cell in &cells {
        let width = GpuArch::by_kind(cell.gpu).simd_width;
        if !spec_jobs
            .iter()
            .any(|(s, w, t)| s.label() == cell.stencil && *w == width && *t == cell.t)
        {
            spec_jobs.push((cell.shape, width, cell.t));
        }
    }
    let specs: HashMap<(String, usize, u32), KernelSpec> = map_cells(
        "temporal.specs",
        &spec_jobs,
        opts.jobs,
        |_, &(shape, width, t)| {
            let _phase = brick_obs::span_cat("lint-verify", "phase");
            let spec = build_temporal_spec(&shape, width, t);
            verify_temporal_spec(&spec, &shape, t, &lint_memo);
            ((shape.label(), width, t), spec)
        },
    )
    .into_iter()
    .collect();

    // Phase 2 — evaluate cells, sharing geometries by (width, reach) and
    // memory counters by (gpu, stencil, degree, blocks_per_sm, fidelity).
    type GeomKey = (usize, usize);
    type MemKey = (GpuKind, String, u32, u32, SimFidelity);
    let geom_memo: Mutex<HashMap<GeomKey, Arc<OnceLock<TraceGeometry>>>> =
        Mutex::new(HashMap::new());
    let mem_memo: Mutex<HashMap<MemKey, Arc<OnceLock<MemCounters>>>> = Mutex::new(HashMap::new());
    fn memo_slot<K: std::hash::Hash + Eq, V>(
        map: &Mutex<HashMap<K, Arc<OnceLock<V>>>>,
        key: K,
    ) -> Arc<OnceLock<V>> {
        Arc::clone(
            map.lock()
                .expect("memo lock poisoned")
                .entry(key)
                .or_default(),
        )
    }

    let outcomes = map_cells("temporal.cells", &cells, opts.jobs, |_, cell: &TCell| {
        let t0 = std::time::Instant::now();
        let _rec_span = brick_obs::span_cat(
            format!("{}/t{}/{}/{}", cell.stencil, cell.t, cell.gpu, cell.model),
            "record",
        );
        let arch = GpuArch::by_kind(cell.gpu);
        let width = arch.simd_width;
        let spec = &specs[&(cell.stencil.clone(), width, cell.t)];
        let compiled = {
            let _phase = brick_obs::span_cat("compile", "phase");
            compile_only(spec, arch, cell.model)
        };
        let Some((cm, compiled, occ)) = compiled else {
            return Ok(None); // unsupported pair: a hole, not an error
        };
        let Some(rl) = rooflines
            .iter()
            .find(|((g, m), _)| *g == cell.gpu && *m == cell.model)
            .map(|(_, r)| *r)
        else {
            return Err(SweepError::MissingRoofline {
                gpu: cell.gpu,
                model: cell.model,
            });
        };

        let key = cache.as_ref().map(|_| {
            temporal_cell_key(
                spec,
                arch,
                cell.model,
                n,
                cell.flops_per_point,
                cell.theoretical_ai,
                &rl,
                opts.fidelity,
                cell.t,
                // the temporal sweep fixes every axis at the paper
                // default except the fusion degree under test
                &brick_codegen::SpecParams {
                    temporal_degree: cell.t,
                    ..brick_codegen::SpecParams::paper_default(width)
                },
            )
        });
        if let (Some(c), Some(key)) = (cache.as_ref(), key.as_ref()) {
            let _phase = brick_obs::span_cat("cache-io", "phase");
            if let CacheOutcome::Hit(record) = c.get::<TemporalRecord>(key) {
                return Ok(Some((record, t0.elapsed().as_secs_f64())));
            }
        }

        // the fused footprint reaches T·r, so the trace geometry's ghost
        // shell must cover the composed radius, not the spatial one
        let reach = cell.t as usize * cell.shape.radius as usize;
        let geom_slot = memo_slot(&geom_memo, (width, reach));
        let mem_slot = memo_slot(
            &mem_memo,
            (
                cell.gpu,
                cell.stencil.clone(),
                cell.t,
                occ.blocks_per_sm,
                opts.fidelity,
            ),
        );
        let (geom, mem) = {
            let _phase = brick_obs::span_cat("simulate", "phase");
            let geom = geom_slot.get_or_init(|| build_geometry(LayoutKind::Brick, n, width, reach));
            let mem = *mem_slot.get_or_init(|| {
                let sim_opts = SimOptions {
                    fidelity: opts.fidelity,
                    ..SimOptions::default()
                };
                simulate_memory_opts(spec, geom, arch, occ.blocks_per_sm, &sim_opts).counters()
            });
            (geom, mem)
        };
        let score = brick_obs::span_cat("score", "phase");
        let sim = assemble(spec, geom, arch, &cm, &compiled, mem, cell.flops_per_point);
        let applied_points = sim.points as f64 * cell.t as f64;
        let record = TemporalRecord {
            shape: cell.shape,
            stencil: cell.stencil.clone(),
            temporal_degree: cell.t,
            gpu: cell.gpu,
            model: cell.model,
            gflops: sim.gflops,
            ai: sim.ai,
            dram_bytes: sim.mem.dram_bytes,
            dram_bytes_per_point: if applied_points > 0.0 {
                sim.mem.dram_bytes as f64 / applied_points
            } else {
                0.0
            },
            l1_bytes: sim.mem.l1_bytes,
            l2_bytes: sim.mem.l2_bytes,
            time_s: sim.time_s,
            occupancy: sim.occupancy.occupancy,
            regs_per_thread: sim.regs_per_thread,
            spilled: sim.spilled,
            limiter: sim.breakdown.limiter().to_string(),
        };
        drop(score); // phases never nest: close scoring before cache-io
        if let (Some(c), Some(key)) = (cache.as_ref(), key.as_ref()) {
            let _phase = brick_obs::span_cat("cache-io", "phase");
            if let Err(e) = c.put(key, &record) {
                brick_obs::warn!("could not cache {}: {e}", key.file_name());
            }
        }
        Ok(Some((record, t0.elapsed().as_secs_f64())))
    });

    let mut records = Vec::new();
    let mut record_wall_s = Vec::new();
    for outcome in outcomes {
        if let Some((record, wall)) = outcome? {
            records.push(record);
            record_wall_s.push(wall);
        }
    }

    let mut degrees: Vec<u32> = records.iter().map(|r| r.temporal_degree).collect();
    degrees.sort_unstable();
    degrees.dedup();

    let cache_after = cache_counters();
    let manifest = manifest
        .finish(sweep_start.elapsed().as_secs_f64(), record_wall_s)
        .with_sweep_info(
            &opts.fidelity.to_string(),
            opts.jobs.count() as u64,
            (
                cache_after.0 - cache_before.0,
                cache_after.1 - cache_before.1,
                cache_after.2 - cache_before.2,
            ),
        )
        .with_temporal_degrees(&degrees);
    Ok(TemporalSweep {
        params: opts.params,
        records,
        manifest,
    })
}

/// [`temporal_sweep_with`] with default scheduling and no disk cache.
/// Panics on invalid parameters.
pub fn temporal_sweep(params: crate::config::ExperimentParams) -> TemporalSweep {
    temporal_sweep_with(&SweepOptions::new(params)).expect("temporal sweep failed")
}

/// `BENCH_temporal.json`: the temporal scaling benchmark and its gates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TemporalBench {
    /// Domain size the benchmark swept.
    pub n: usize,
    /// star-7 DRAM bytes/point-step at the deepest degree over `T=1`
    /// (A100/CUDA) — the AN5D headline ratio; gated at ≤ 0.45.
    pub star7_dram_ratio: f64,
    /// Deepest star-7 degree the ratio was taken at.
    pub star7_max_degree: u32,
    /// The A100/CUDA panel, in canonical order.
    pub panel: Vec<TemporalRecord>,
    /// Provenance of the sweep behind the numbers.
    pub manifest: brick_obs::RunManifest,
}

/// DRAM-scaling acceptance bound for star-7 at the deepest fusion degree.
pub const STAR7_DRAM_RATIO_MAX: f64 = 0.45;

/// Run the temporal benchmark at `n³` and write `BENCH_temporal.json`
/// under `out`.
///
/// Gates (an `Err` means a gate failed — callers should exit non-zero):
/// AI must **strictly increase** with the fusion degree for every star
/// stencil on every platform, and star-7's DRAM bytes per applied
/// timestep at its deepest degree must be at most
/// [`STAR7_DRAM_RATIO_MAX`] of the spatial baseline on A100/CUDA.
pub fn run_bench_temporal(
    n: usize,
    jobs: Option<usize>,
    out: &std::path::Path,
) -> Result<TemporalBench, String> {
    let mut opts = SweepOptions::new(crate::config::ExperimentParams { n });
    if let Some(j) = jobs {
        opts = opts.jobs(j);
    }
    let sweep = temporal_sweep_with(&opts).map_err(|e| e.to_string())?;

    let mut gate_failures = Vec::new();
    for &(gpu, model) in &ProgModel::paper_matrix() {
        // the star family with a fusible degree range: 7pt (star-1) and
        // 13pt (star-2); star-3/4 are spatial-only under the 4×4 block
        for stencil in ["7pt", "13pt"] {
            let series = sweep.series(gpu, model, stencil);
            for pair in series.windows(2) {
                if pair[1].ai <= pair[0].ai {
                    gate_failures.push(format!(
                        "{gpu}/{model} {stencil}: AI not strictly increasing \
                         (t{} {:.4} <= t{} {:.4})",
                        pair[1].temporal_degree, pair[1].ai, pair[0].temporal_degree, pair[0].ai
                    ));
                }
            }
        }
    }

    let series = sweep.series(GpuKind::A100, ProgModel::Cuda, "7pt");
    let t1 = series.first().ok_or("no star-7 T=1 record")?;
    let deepest = series.last().ok_or("no star-7 fused record")?;
    let ratio = deepest.dram_bytes_per_point / t1.dram_bytes_per_point;
    if ratio > STAR7_DRAM_RATIO_MAX {
        gate_failures.push(format!(
            "star-7 DRAM/pt-step ratio at t{}: {ratio:.3} > {STAR7_DRAM_RATIO_MAX}",
            deepest.temporal_degree
        ));
    }

    let bench = TemporalBench {
        n,
        star7_dram_ratio: ratio,
        star7_max_degree: deepest.temporal_degree,
        panel: sweep
            .records
            .iter()
            .filter(|r| r.gpu == GpuKind::A100 && r.model == ProgModel::Cuda)
            .cloned()
            .collect(),
        manifest: sweep.manifest.clone(),
    };
    let path = out.join("BENCH_temporal.json");
    let json = serde_json::to_string_pretty(&bench).map_err(|e| e.to_string())?;
    std::fs::write(&path, json).map_err(|e| format!("write {}: {e}", path.display()))?;

    if gate_failures.is_empty() {
        Ok(bench)
    } else {
        Err(gate_failures.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::shared_temporal_sweep;

    #[test]
    fn matrix_covers_every_feasible_degree() {
        let s = shared_temporal_sweep();
        // degrees per stencil: star-1/cube-1 → 4, star-2/cube-2 → 2,
        // star-3/star-4 → 1; 14 series × 6 (gpu, model) pairs
        assert_eq!(s.records.len(), 14 * 6);
        assert_eq!(s.manifest.temporal_degrees, vec![1, 2, 3, 4]);
        for shape in StencilShape::paper_suite() {
            for t in feasible_degrees(&shape) {
                assert!(
                    s.point(GpuKind::A100, ProgModel::Cuda, &shape.label(), t)
                        .is_some(),
                    "{shape} t{t} missing"
                );
            }
        }
    }

    #[test]
    fn ai_strictly_increases_with_degree_on_stars() {
        let s = shared_temporal_sweep();
        for &(gpu, model) in &ProgModel::paper_matrix() {
            for stencil in ["7pt", "13pt"] {
                let series = s.series(gpu, model, stencil);
                assert!(series.len() >= 2, "{gpu} {model} {stencil}");
                for pair in series.windows(2) {
                    assert!(
                        pair[1].ai > pair[0].ai,
                        "{gpu} {model} {stencil}: AI t{} {:.3} !> t{} {:.3}",
                        pair[1].temporal_degree,
                        pair[1].ai,
                        pair[0].temporal_degree,
                        pair[0].ai
                    );
                }
            }
        }
    }

    #[test]
    fn dram_bytes_per_applied_step_shrink_with_degree() {
        // the AN5D headline at test scale: star-7 fused 4 deep moves well
        // under half the DRAM bytes per applied timestep of the spatial
        // baseline (the 512³ acceptance run is `--bench-temporal`)
        let s = shared_temporal_sweep();
        let t1 = s.point(GpuKind::A100, ProgModel::Cuda, "7pt", 1).unwrap();
        let t4 = s.point(GpuKind::A100, ProgModel::Cuda, "7pt", 4).unwrap();
        assert!(
            t4.dram_bytes_per_point <= 0.45 * t1.dram_bytes_per_point,
            "t4 {:.2} B/pt-step vs t1 {:.2} B/pt-step",
            t4.dram_bytes_per_point,
            t1.dram_bytes_per_point
        );
    }

    #[test]
    fn degree_one_matches_spatial_flop_accounting() {
        let s = shared_temporal_sweep();
        for r in &s.records {
            if r.temporal_degree == 1 {
                let a = StencilAnalysis::of_shape(&r.shape);
                // per-launch AI at T=1 is the plain empirical AI, bounded
                // by the per-step theoretical ceiling
                assert!(r.ai <= a.theoretical_ai * 1.001, "{r:?}");
            }
            assert!(r.gflops > 0.0 && r.time_s > 0.0, "{r:?}");
            assert!(r.l1_bytes >= r.dram_bytes, "{r:?}");
        }
    }

    #[test]
    fn hip_wrapper_matches_cuda() {
        let s = shared_temporal_sweep();
        for t in [1, 2, 4] {
            let c = s.point(GpuKind::A100, ProgModel::Cuda, "7pt", t).unwrap();
            let h = s.point(GpuKind::A100, ProgModel::Hip, "7pt", t).unwrap();
            assert_eq!(c.dram_bytes, h.dram_bytes);
            assert!((c.gflops - h.gflops).abs() / c.gflops < 1e-9);
        }
    }
}
