//! The paper's published numbers, for side-by-side comparison.
//!
//! Tables 3 and 5 are reproduced verbatim from the paper so the harness
//! can print measured-vs-published deltas (`experiments --compare`).
//! Absolute agreement is not the goal (our platforms are simulated); the
//! comparison quantifies how closely the *shapes* track.

use serde::{Deserialize, Serialize};

use crate::runner::Sweep;
use crate::tables::PortabilityTable;

/// Published per-stencil rows of a portability table: five platform
/// efficiencies and the row P, in the paper's column order
/// (A100 CUDA, A100 SYCL, MI250X HIP, MI250X SYCL, PVC SYCL).
pub type PaperRow = (&'static str, [f64; 5], f64);

/// Paper Table 3: P based on fraction of the Roofline.
pub fn paper_table3() -> Vec<PaperRow> {
    vec![
        ("7pt", [0.95, 0.84, 0.66, 0.68, 0.77], 0.77),
        ("13pt", [0.92, 0.79, 0.66, 0.67, 0.67], 0.73),
        ("19pt", [0.85, 0.87, 0.65, 0.66, 0.53], 0.69),
        ("25pt", [0.69, 0.79, 0.66, 0.64, 0.47], 0.63),
        ("27pt", [0.82, 0.60, 0.66, 0.67, 0.61], 0.66),
        ("125pt", [0.47, 0.39, 0.42, 0.63, 0.23], 0.38),
    ]
}

/// Paper Table 5: P based on fraction of theoretical arithmetic
/// intensity.
pub fn paper_table5() -> Vec<PaperRow> {
    vec![
        ("7pt", [0.92, 0.49, 0.62, 0.59, 0.93], 0.67),
        ("13pt", [0.92, 0.88, 0.66, 0.48, 0.92], 0.72),
        ("19pt", [0.91, 0.87, 0.60, 0.43, 0.91], 0.68),
        ("25pt", [0.88, 0.81, 0.56, 0.41, 0.91], 0.65),
        ("27pt", [0.93, 0.59, 0.67, 0.59, 0.92], 0.71),
        ("125pt", [0.92, 0.89, 0.64, 0.38, 0.92], 0.67),
    ]
}

/// Overall P values the paper reports under each table.
pub const PAPER_OVERALL_P3: f64 = 0.61;
/// Overall P of the paper's Table 5.
pub const PAPER_OVERALL_P5: f64 = 0.68;

/// Comparison of one measured portability table against the paper's.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableComparison {
    /// Which table.
    pub table: String,
    /// `(stencil, measured P, paper P)` rows.
    pub rows: Vec<(String, f64, f64)>,
    /// Measured overall P.
    pub measured_overall: f64,
    /// Paper overall P.
    pub paper_overall: f64,
    /// Mean absolute per-row difference in P.
    pub mean_abs_diff: f64,
    /// Rank (Spearman) correlation between the measured and published
    /// per-row P orderings — the "same shape" statistic.
    pub rank_correlation: f64,
}

fn spearman(measured: &[f64], paper: &[f64]) -> f64 {
    fn ranks(v: &[f64]) -> Vec<f64> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&a, &b| v[a].total_cmp(&v[b]));
        let mut r = vec![0.0; v.len()];
        for (rank, &i) in idx.iter().enumerate() {
            r[i] = rank as f64;
        }
        r
    }
    let (ra, rb) = (ranks(measured), ranks(paper));
    let n = measured.len() as f64;
    let d2: f64 = ra.iter().zip(&rb).map(|(a, b)| (a - b).powi(2)).sum();
    1.0 - 6.0 * d2 / (n * (n * n - 1.0))
}

/// Compare a measured portability table against its published
/// counterpart.
pub fn compare_table(
    measured: &PortabilityTable,
    paper: &[PaperRow],
    paper_overall: f64,
    name: &str,
) -> TableComparison {
    assert_eq!(measured.rows.len(), paper.len(), "row count mismatch");
    let mut rows = Vec::new();
    let mut diff_sum = 0.0;
    let (mut ms, mut ps) = (Vec::new(), Vec::new());
    for ((stencil, _, p), (pst, _, pp)) in measured.rows.iter().zip(paper) {
        assert_eq!(stencil, pst, "stencil order mismatch");
        rows.push((stencil.clone(), *p, *pp));
        diff_sum += (p - pp).abs();
        ms.push(*p);
        ps.push(*pp);
    }
    TableComparison {
        table: name.to_string(),
        measured_overall: measured.overall_p,
        paper_overall,
        mean_abs_diff: diff_sum / rows.len() as f64,
        rank_correlation: spearman(&ms, &ps),
        rows,
    }
}

/// Build both comparisons from a sweep.
pub fn compare_all(sweep: &Sweep) -> (TableComparison, TableComparison) {
    let t3 = crate::tables::table3(sweep);
    let t5 = crate::tables::table5(sweep);
    (
        compare_table(&t3, &paper_table3(), PAPER_OVERALL_P3, "Table 3"),
        compare_table(&t5, &paper_table5(), PAPER_OVERALL_P5, "Table 5"),
    )
}

/// Render a comparison as text.
pub fn render_comparison(c: &TableComparison) -> String {
    use std::fmt::Write;
    let mut out = format!("--- {} vs paper ---\n", c.table);
    let _ = writeln!(
        out,
        "{:>8} {:>10} {:>8} {:>7}",
        "stencil", "measured", "paper", "diff"
    );
    for (stencil, m, p) in &c.rows {
        let _ = writeln!(
            out,
            "{:>8} {:>9.0}% {:>7.0}% {:>+6.0}%",
            stencil,
            m * 100.0,
            p * 100.0,
            (m - p) * 100.0
        );
    }
    let _ = writeln!(
        out,
        "overall: measured {:.0}% vs paper {:.0}%; mean |ΔP| {:.0}pp; rank corr {:.2}",
        c.measured_overall * 100.0,
        c.paper_overall * 100.0,
        c.mean_abs_diff * 100.0,
        c.rank_correlation
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::shared_sweep;

    #[test]
    fn paper_rows_match_published_p() {
        // row P must be the harmonic mean of its efficiencies (validates
        // our transcription of the paper's tables)
        for (stencil, effs, p) in paper_table3().iter().chain(paper_table5().iter()) {
            let hm =
                perf_portability::pennycook_p(&effs.iter().map(|e| Some(*e)).collect::<Vec<_>>());
            assert!(
                (hm - p).abs() < 0.012,
                "{stencil}: harmonic {hm:.3} vs published {p:.3}"
            );
        }
    }

    #[test]
    fn spearman_basics() {
        assert!((spearman(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]) - 1.0).abs() < 1e-12);
        assert!((spearman(&[3.0, 2.0, 1.0], &[10.0, 20.0, 30.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn comparison_against_shared_sweep() {
        let (c3, c5) = compare_all(shared_sweep());
        assert_eq!(c3.rows.len(), 6);
        assert_eq!(c5.rows.len(), 6);
        // shapes must agree better than chance: the 125pt row is the
        // minimum in both our Table 3 and the paper's
        let min_measured = c3
            .rows
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap()
            .0
            .clone();
        assert_eq!(min_measured, "125pt");
        // mean deviation stays bounded (simulated platform, same shape)
        assert!(c3.mean_abs_diff < 0.35, "{}", c3.mean_abs_diff);
        let r = render_comparison(&c3);
        assert!(r.contains("rank corr"));
    }
}
