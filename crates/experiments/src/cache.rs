//! Domain cache keys for the incremental sweep.
//!
//! The generic store ([`brick_sweep::DiskCache`]) is content-addressed;
//! this module defines *what* the content of a sweep cell is: the kernel
//! program (by the analyzer's stable fingerprint), the full architecture
//! description, the programming model, the domain geometry, and the
//! scoring inputs (normalised FLOPs, theoretical AI, the empirical
//! Roofline ceilings). Any change to any of these produces a different
//! key, so stale results can never be served; anything *not* in the key
//! must be a pure function of it.

use std::hash::{Hash, Hasher};

use brick_codegen::SpecParams;
use brick_sweep::{CacheKey, KeyBuilder};
use brick_vm::KernelSpec;
use gpu_sim::{GpuArch, ProgModel, SimFidelity};
use roofline::Roofline;

/// Version of the simulation semantics behind cached values. Bump this
/// whenever the timing, cache, compiler or roofline models change
/// behaviour without changing any key field — it retires every entry
/// written under the old semantics at once.
///
/// v2: simulation fidelity ([`SimFidelity`]) became part of the cell
/// identity, and the cache model gained an MRU lookup memo (accounting
/// unchanged, but retiring v1 entries keeps provenance honest).
///
/// v3: temporal fusion degree became part of the cell identity (both via
/// the kernel fingerprint — fused programs hash differently — and as an
/// explicit key field, so a `T=2` cell can never be served a cached
/// `T=1` record even if a future refactor makes their programs collide),
/// and temporal records moved to their own `tcell` domain so a `T=1`
/// fused cell can never share a file with a base sweep record.
///
/// v4: the full kernel-specialization vector
/// ([`brick_codegen::SpecParams`]) became an explicit key field. Kernels
/// were specialized before v4 too, but only implicitly (vector width via
/// the program hash, everything else fixed at the paper defaults); now
/// that the tuner varies every axis, two cells whose *programs* coincide
/// (e.g. the same kernel under a different ordering or interleave chunk)
/// must never share a record, and no pre-specialization v3 entry may
/// alias a specialized one — the version bump retires them all at once.
pub const SIM_SCHEMA_VERSION: u64 = 4;

/// Stable fingerprint of either kernel family.
///
/// Vector kernels reuse the analyzer's content hash
/// ([`brick_lint::fingerprint`]) — the same fingerprint that memoises
/// static verification, so "verified" and "cached" always refer to the
/// identical program text. Scalar kernels (no IR) hash their complete
/// definition: name, layout, block shape and coefficient classes.
pub fn spec_fingerprint(spec: &KernelSpec) -> u64 {
    match spec {
        KernelSpec::Vector(k) => brick_lint::fingerprint(k),
        KernelSpec::Scalar(k) => {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            k.name.hash(&mut h);
            format!("{}", k.layout).hash(&mut h);
            (k.block.bx, k.block.by, k.block.bz).hash(&mut h);
            for (w, offs) in &k.classes {
                w.to_bits().hash(&mut h);
                offs.hash(&mut h);
            }
            h.finish()
        }
    }
}

/// Stable fingerprint of a full architecture description (every field,
/// via its canonical JSON) — editing any entry of the shared arch table
/// invalidates that GPU's cached cells.
pub fn arch_fingerprint(arch: &GpuArch) -> u64 {
    let json = serde_json::to_string(arch).expect("GpuArch serializes");
    brick_obs::manifest::fnv1a64(json.as_bytes())
}

/// Cache key for one sweep cell's [`crate::runner::Record`].
#[allow(clippy::too_many_arguments)]
pub fn cell_key(
    spec: &KernelSpec,
    arch: &GpuArch,
    model: ProgModel,
    n: usize,
    flops_per_point: u64,
    theoretical_ai: f64,
    roofline: &Roofline,
    fidelity: SimFidelity,
    temporal_degree: u32,
    spec_params: &SpecParams,
) -> CacheKey {
    keyed(
        "cell",
        spec,
        arch,
        model,
        n,
        flops_per_point,
        theoretical_ai,
        roofline,
        fidelity,
        temporal_degree,
        spec_params,
    )
}

/// Cache key for one temporal-sweep cell's
/// [`crate::temporal::TemporalRecord`].
///
/// Same fields as [`cell_key`], but a distinct `tcell` domain: the cached
/// *value shape* differs (a fused record carries its degree and
/// per-applied-step traffic), and at `T=1` the fused program and every
/// key field can legitimately coincide with the base sweep's gather cell.
/// A shared file would then flap between the two record schemas on every
/// interleaved run — the domain split makes that impossible by
/// construction.
#[allow(clippy::too_many_arguments)]
pub fn temporal_cell_key(
    spec: &KernelSpec,
    arch: &GpuArch,
    model: ProgModel,
    n: usize,
    flops_per_point: u64,
    theoretical_ai: f64,
    roofline: &Roofline,
    fidelity: SimFidelity,
    temporal_degree: u32,
    spec_params: &SpecParams,
) -> CacheKey {
    keyed(
        "tcell",
        spec,
        arch,
        model,
        n,
        flops_per_point,
        theoretical_ai,
        roofline,
        fidelity,
        temporal_degree,
        spec_params,
    )
}

#[allow(clippy::too_many_arguments)]
fn keyed(
    domain: &str,
    spec: &KernelSpec,
    arch: &GpuArch,
    model: ProgModel,
    n: usize,
    flops_per_point: u64,
    theoretical_ai: f64,
    roofline: &Roofline,
    fidelity: SimFidelity,
    temporal_degree: u32,
    spec_params: &SpecParams,
) -> CacheKey {
    KeyBuilder::new(domain, SIM_SCHEMA_VERSION)
        .fingerprint("kernel", spec_fingerprint(spec))
        .fingerprint("spec", spec_params.fingerprint())
        .fingerprint("arch", arch_fingerprint(arch))
        .field("model", model)
        .field("n", n)
        .field("flops", flops_per_point)
        .field("fidelity", fidelity)
        .field("temporal", temporal_degree)
        .f64_bits("theory_ai", theoretical_ai)
        .f64_bits("rl_peak", roofline.peak_gflops)
        .f64_bits("rl_bw", roofline.bandwidth_gbs)
        .build()
}

/// Cache key for a platform's empirical Roofline measurement.
pub fn roofline_key(arch: &GpuArch, model: ProgModel) -> CacheKey {
    KeyBuilder::new("roofline", SIM_SCHEMA_VERSION)
        .fingerprint("arch", arch_fingerprint(arch))
        .field("model", model)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KernelConfig;
    use crate::runner::build_spec;
    use brick_dsl::shape::StencilShape;
    use brick_dsl::StencilAnalysis;

    fn spec_for(config: KernelConfig) -> KernelSpec {
        build_spec(&StencilShape::star(1), config, 32)
    }

    fn key_fidelity(
        spec: &KernelSpec,
        arch: &GpuArch,
        n: usize,
        fidelity: SimFidelity,
    ) -> CacheKey {
        let a = StencilAnalysis::of_shape(&StencilShape::star(1));
        cell_key(
            spec,
            arch,
            ProgModel::Cuda,
            n,
            a.flops_per_point,
            a.theoretical_ai,
            &Roofline {
                peak_gflops: 8000.0,
                bandwidth_gbs: 1500.0,
            },
            fidelity,
            1,
            &SpecParams::paper_default(32),
        )
    }

    fn key_for(spec: &KernelSpec, arch: &GpuArch, n: usize) -> CacheKey {
        key_fidelity(spec, arch, n, SimFidelity::default())
    }

    #[test]
    fn keys_are_stable_across_recomputation() {
        let arch = GpuArch::a100();
        let a = key_for(&spec_for(KernelConfig::BricksCodegen), &arch, 64);
        let b = key_for(&spec_for(KernelConfig::BricksCodegen), &arch, 64);
        assert_eq!(a, b, "same cell, same key, every time");
    }

    #[test]
    fn kernel_change_invalidates() {
        let arch = GpuArch::a100();
        let a = key_for(&spec_for(KernelConfig::BricksCodegen), &arch, 64);
        let b = key_for(&spec_for(KernelConfig::ArrayCodegen), &arch, 64);
        let c = key_for(&spec_for(KernelConfig::Array), &arch, 64);
        assert_ne!(a.hash, b.hash, "different program, different key");
        assert_ne!(b.hash, c.hash, "scalar vs vector kernels differ");
    }

    #[test]
    fn sim_config_change_invalidates() {
        let arch = GpuArch::a100();
        let spec = spec_for(KernelConfig::BricksCodegen);
        let base = key_for(&spec, &arch, 64);
        assert_ne!(base.hash, key_for(&spec, &arch, 128).hash, "domain size");
        let mut tweaked = arch.clone();
        tweaked.l2_bytes /= 2;
        assert_ne!(
            base.hash,
            key_for(&spec, &tweaked, 64).hash,
            "arch table edit"
        );
    }

    #[test]
    fn exact_and_fast_cells_never_collide() {
        // the two fidelities are bit-identical by contract, but cached
        // values must still be attributable to the mode that produced
        // them — a Fast record may never satisfy an Exact lookup
        let arch = GpuArch::a100();
        let spec = spec_for(KernelConfig::BricksCodegen);
        let fast = key_fidelity(&spec, &arch, 64, SimFidelity::Fast);
        let exact = key_fidelity(&spec, &arch, 64, SimFidelity::Exact);
        assert_ne!(fast.hash, exact.hash, "fidelity must be in the key");
        assert_ne!(fast.file_name(), exact.file_name());
    }

    #[test]
    fn temporal_degree_is_in_the_key() {
        // same spec, same everything, different declared fusion degree:
        // the explicit key field alone must separate the cells
        let arch = GpuArch::a100();
        let spec = spec_for(KernelConfig::BricksCodegen);
        let a = StencilAnalysis::of_shape(&StencilShape::star(1));
        let key_t = |t: u32| {
            cell_key(
                &spec,
                &arch,
                ProgModel::Cuda,
                64,
                a.flops_per_point,
                a.theoretical_ai,
                &Roofline {
                    peak_gflops: 8000.0,
                    bandwidth_gbs: 1500.0,
                },
                SimFidelity::default(),
                t,
                &SpecParams::paper_default(32),
            )
        };
        let t1 = key_t(1);
        let t2 = key_t(2);
        assert_ne!(t1.hash, t2.hash, "T must be in the cell key");
        assert_ne!(t1.file_name(), t2.file_name());
    }

    #[test]
    fn temporal_and_base_cells_never_share_a_file() {
        // at T=1 the fused gather program and every key field can equal
        // the base sweep's — the record *shapes* still differ, so the
        // domains must keep the entry files apart
        let arch = GpuArch::a100();
        let spec = spec_for(KernelConfig::BricksCodegen);
        let a = StencilAnalysis::of_shape(&StencilShape::star(1));
        let rl = Roofline {
            peak_gflops: 8000.0,
            bandwidth_gbs: 1500.0,
        };
        let base = cell_key(
            &spec,
            &arch,
            ProgModel::Cuda,
            64,
            a.flops_per_point,
            a.theoretical_ai,
            &rl,
            SimFidelity::default(),
            1,
            &SpecParams::paper_default(32),
        );
        let fused = temporal_cell_key(
            &spec,
            &arch,
            ProgModel::Cuda,
            64,
            a.flops_per_point,
            a.theoretical_ai,
            &rl,
            SimFidelity::default(),
            1,
            &SpecParams::paper_default(32),
        );
        assert_ne!(base.file_name(), fused.file_name());
        assert!(fused.file_name().starts_with("tcell-"));
        assert!(base.file_name().starts_with("cell-"));
    }

    #[test]
    fn specialization_vector_is_in_the_key() {
        // two cells can share the identical generated program (ordering
        // and interleave chunk never reach the IR) — the explicit
        // SpecParams fingerprint must still keep their records apart
        let arch = GpuArch::a100();
        let spec = spec_for(KernelConfig::BricksCodegen);
        let a = StencilAnalysis::of_shape(&StencilShape::star(1));
        let key_p = |p: &SpecParams| {
            cell_key(
                &spec,
                &arch,
                ProgModel::Cuda,
                64,
                a.flops_per_point,
                a.theoretical_ai,
                &Roofline {
                    peak_gflops: 8000.0,
                    bandwidth_gbs: 1500.0,
                },
                SimFidelity::default(),
                1,
                p,
            )
        };
        let paper = SpecParams::paper_default(32);
        let morton = SpecParams {
            ordering: brick_core::BrickOrdering::Morton,
            ..paper
        };
        let chunked = SpecParams {
            interleave_chunk: 256,
            ..paper
        };
        assert_ne!(key_p(&paper).hash, key_p(&morton).hash);
        assert_ne!(key_p(&paper).hash, key_p(&chunked).hash);
        assert_ne!(key_p(&morton).file_name(), key_p(&chunked).file_name());
    }

    #[test]
    fn scalar_fingerprint_is_content_addressed() {
        let a = spec_for(KernelConfig::Array);
        let b = spec_for(KernelConfig::Array);
        assert_eq!(spec_fingerprint(&a), spec_fingerprint(&b));
        let wider = build_spec(&StencilShape::star(1), KernelConfig::Array, 64);
        assert_ne!(spec_fingerprint(&a), spec_fingerprint(&wider));
    }
}
