//! Figure reproductions: the data series behind each plot of §5, plus
//! the Fig. 1/2 listings.

use serde::{Deserialize, Serialize};

use brick_codegen::{emit_scalar, emit_vector, generate, CodegenOptions, Dialect, LayoutKind};
use brick_dsl::shape::StencilShape;
use gpu_sim::{GpuKind, ProgModel};
use perf_portability::{correlate, CorrelationSummary, PairedPoint, SpeedupPoint};
use roofline::Roofline;

use crate::config::KernelConfig;
use crate::runner::{Record, Sweep};

/// The Fig. 1 DSL listing and Fig. 2 kernel listings (star radius 2 DSL,
/// star radius 1 kernels in CUDA/HIP/SYCL, plus the generated vector
/// kernel for comparison).
pub fn fig1_fig2_listings() -> String {
    let mut out = String::new();
    let star2 = StencilShape::star(2).stencil();
    out.push_str("=== Fig. 1: DSL input (star-shaped, radius 2) ===\n");
    out.push_str(&star2.to_string());
    out.push('\n');

    let star1 = StencilShape::star(1).stencil();
    let b = star1.default_bindings();
    for dialect in [Dialect::Cuda, Dialect::Hip, Dialect::Sycl] {
        out.push_str(&format!(
            "=== Fig. 2 ({}): star stencil on bricks, no codegen ===\n",
            dialect.name()
        ));
        out.push_str(&emit_scalar(&star1, &b, LayoutKind::Brick, dialect));
        out.push('\n');
    }

    let kernel = generate(&star1, &b, LayoutKind::Brick, 32, CodegenOptions::default())
        .expect("star r1 generates");
    out.push_str("=== generated vector kernel (CUDA) ===\n");
    out.push_str(&emit_vector(&kernel, Dialect::Cuda));
    out
}

/// One panel of Fig. 3: a `(GPU, model)` Roofline with every
/// `(config, stencil)` point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Panel {
    /// GPU of the panel.
    pub gpu: GpuKind,
    /// Programming model of the panel.
    pub model: ProgModel,
    /// Empirical Roofline ceilings.
    pub roofline: Roofline,
    /// `(config, stencil, AI, GFLOP/s)` points.
    pub points: Vec<(KernelConfig, String, f64, f64)>,
}

/// Fig. 3: Roofline data for all nine panels (3 models × 3 GPUs, minus
/// unsupported pairs = the paper's 6).
pub fn fig3(sweep: &Sweep) -> Vec<Fig3Panel> {
    ProgModel::paper_matrix()
        .into_iter()
        .map(|(gpu, model)| Fig3Panel {
            gpu,
            model,
            roofline: *sweep.roofline(gpu, model).expect("roofline measured"),
            points: sweep
                .select(Some(gpu), Some(model), None)
                .into_iter()
                .map(|r| (r.config, r.stencil.clone(), r.ai, r.gflops))
                .collect(),
        })
        .collect()
}

/// One bar group of Fig. 4: L1 bytes per configuration for one platform.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Group {
    /// GPU.
    pub gpu: GpuKind,
    /// Programming model.
    pub model: ProgModel,
    /// `(config, stencil, L1 bytes)` bars.
    pub bars: Vec<(KernelConfig, String, u64)>,
}

/// Fig. 4: L1 data movement per kernel, model and architecture.
pub fn fig4(sweep: &Sweep) -> Vec<Fig4Group> {
    ProgModel::paper_matrix()
        .into_iter()
        .map(|(gpu, model)| Fig4Group {
            gpu,
            model,
            bars: sweep
                .select(Some(gpu), Some(model), None)
                .into_iter()
                .map(|r| (r.config, r.stencil.clone(), r.l1_bytes))
                .collect(),
        })
        .collect()
}

/// A correlation figure (Fig. 5 or 6): performance and bytes-accessed
/// panels comparing two programming models on one GPU.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorrelationFigure {
    /// GPU both models run on.
    pub gpu: GpuKind,
    /// y-axis model.
    pub y_model: ProgModel,
    /// x-axis model.
    pub x_model: ProgModel,
    /// Performance pairs in GFLOP/s.
    pub perf_points: Vec<PairedPoint>,
    /// Summary of the performance panel.
    pub perf: CorrelationSummary,
    /// Bytes-accessed pairs (DRAM bytes).
    pub bytes_points: Vec<PairedPoint>,
    /// Summary of the bytes panel.
    pub bytes: CorrelationSummary,
    /// Theoretical lower bound on bytes (the dotted line): `16 B × n³`.
    pub bytes_lower_bound: u64,
}

fn correlation_figure(
    sweep: &Sweep,
    gpu: GpuKind,
    y_model: ProgModel,
    x_model: ProgModel,
) -> CorrelationFigure {
    let pair = |pick: &dyn Fn(&Record) -> f64| -> Vec<PairedPoint> {
        let mut out = Vec::new();
        for config in KernelConfig::all() {
            for shape in StencilShape::paper_suite() {
                let label = shape.label();
                let y = sweep.point(gpu, y_model, config, &label).unwrap();
                let x = sweep.point(gpu, x_model, config, &label).unwrap();
                out.push(PairedPoint {
                    label: format!("{label} {config}"),
                    y: pick(y),
                    x: pick(x),
                });
            }
        }
        out
    };
    let perf_points = pair(&|r| r.gflops);
    let bytes_points = pair(&|r| r.dram_bytes as f64);
    let n = sweep.params.n as u64;
    CorrelationFigure {
        gpu,
        y_model,
        x_model,
        perf: correlate(&perf_points),
        bytes: correlate(&bytes_points),
        perf_points,
        bytes_points,
        bytes_lower_bound: 16 * n * n * n,
    }
}

/// Fig. 5: CUDA vs SYCL on the A100.
pub fn fig5(sweep: &Sweep) -> CorrelationFigure {
    correlation_figure(sweep, GpuKind::A100, ProgModel::Cuda, ProgModel::Sycl)
}

/// Fig. 6: HIP vs SYCL on the MI250X GCD.
pub fn fig6(sweep: &Sweep) -> CorrelationFigure {
    correlation_figure(sweep, GpuKind::Mi250xGcd, ProgModel::Hip, ProgModel::Sycl)
}

/// Fig. 7: the potential speed-up plane for `bricks codegen` on the five
/// platforms.
pub fn fig7(sweep: &Sweep) -> Vec<SpeedupPoint> {
    let mut out = Vec::new();
    for (gpu, model) in ProgModel::portability_columns() {
        for shape in StencilShape::paper_suite() {
            let label = shape.label();
            let r = sweep
                .point(gpu, model, KernelConfig::BricksCodegen, &label)
                .unwrap();
            out.push(SpeedupPoint {
                label: format!("{label} {gpu} {model}"),
                frac_ai: r.frac_theoretical_ai,
                frac_roofline: r.frac_roofline,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::shared_sweep;

    #[test]
    fn listings_contain_all_dialects() {
        let l = fig1_fig2_listings();
        assert!(l.contains("13 taps")); // Fig. 1 is the radius-2 star
        assert!(l.contains("blockIdx.z"));
        assert!(l.contains("hipBlockIdx_z"));
        assert!(l.contains("parallel_for"));
        assert!(l.contains("__shfl_down_sync"));
    }

    #[test]
    fn fig3_has_six_panels_of_eighteen_points() {
        let panels = fig3(shared_sweep());
        assert_eq!(panels.len(), 6);
        for p in &panels {
            assert_eq!(p.points.len(), 18, "{} {}", p.gpu, p.model);
            for (_, _, ai, gflops) in &p.points {
                // no point can beat its own Roofline
                assert!(
                    *gflops <= p.roofline.attainable(*ai) * 1.2,
                    "{} {} point above roofline",
                    p.gpu,
                    p.model
                );
            }
        }
    }

    #[test]
    fn fig4_bricks_codegen_moves_least_l1() {
        for g in fig4(shared_sweep()) {
            for shape in StencilShape::paper_suite() {
                let label = shape.label();
                let l1 = |c: KernelConfig| {
                    g.bars
                        .iter()
                        .find(|(bc, bl, _)| *bc == c && *bl == label)
                        .unwrap()
                        .2
                };
                assert!(
                    l1(KernelConfig::Array) > l1(KernelConfig::BricksCodegen),
                    "{} {} {label}",
                    g.gpu,
                    g.model
                );
            }
        }
    }

    #[test]
    fn fig5_cuda_wins_overall() {
        let f = fig5(shared_sweep());
        assert_eq!(f.perf_points.len(), 18);
        // paper: CUDA consistently outperforms SYCL on A100. In the
        // simulator many memory-bound points tie exactly (both models
        // saturate the same DRAM stream), so assert CUDA never *loses*,
        // wins on average, and wins big where compilation matters.
        assert!(f.perf.min_ratio >= 0.999, "{:?}", f.perf);
        assert!(f.perf.geomean_ratio > 1.05, "{:?}", f.perf);
        assert!(f.perf.max_ratio > 2.0, "{:?}", f.perf);
    }

    #[test]
    fn fig6_models_closer_than_fig5() {
        let s = shared_sweep();
        let f5 = fig5(s);
        let f6 = fig6(s);
        // paper: "a more balanced scenario" on AMD
        assert!(f6.perf.geomean_ratio < f5.perf.geomean_ratio);
    }

    #[test]
    fn bytes_respect_lower_bound() {
        let f = fig5(shared_sweep());
        for p in &f.bytes_points {
            assert!(p.x >= f.bytes_lower_bound as f64 * 0.999, "{p:?}");
            assert!(p.y >= f.bytes_lower_bound as f64 * 0.999, "{p:?}");
        }
    }

    #[test]
    fn fig7_has_thirty_points_with_headroom() {
        let pts = fig7(shared_sweep());
        assert_eq!(pts.len(), 30);
        for p in &pts {
            assert!(p.frac_ai > 0.0 && p.frac_ai <= 1.001, "{p:?}");
            assert!(p.potential() >= 1.0 / 1.2, "{p:?}");
        }
    }
}
