//! ASCII plotting: log-log Roofline panels (Fig. 3) and the potential
//! speed-up plane (Fig. 7) rendered for the terminal.

use crate::config::KernelConfig;
use crate::figures::Fig3Panel;
use perf_portability::SpeedupPoint;

const PLOT_W: usize = 64;
const PLOT_H: usize = 20;

fn config_glyph(c: KernelConfig) -> char {
    match c {
        KernelConfig::Array => 'a',
        KernelConfig::ArrayCodegen => 'c',
        KernelConfig::BricksCodegen => 'B',
    }
}

/// Render one Fig. 3 panel as a log-log ASCII Roofline plot.
///
/// `a` = array, `c` = array codegen, `B` = bricks codegen; `*` marks
/// overlapping configurations; the `/`-then-`-` line is the Roofline.
pub fn roofline_ascii(panel: &Fig3Panel) -> String {
    let rl = &panel.roofline;
    // axis ranges: AI from 0.25 to 16, GFLOP/s from peak/64 to peak*1.2
    let (ai_lo, ai_hi) = (0.25f64, 16.0f64);
    let gf_hi = rl.peak_gflops * 1.2;
    let gf_lo = gf_hi / 128.0;

    let x_of = |ai: f64| -> Option<usize> {
        if ai <= 0.0 {
            return None;
        }
        let t = (ai.ln() - ai_lo.ln()) / (ai_hi.ln() - ai_lo.ln());
        if !(0.0..=1.0).contains(&t) {
            return None;
        }
        Some((t * (PLOT_W - 1) as f64).round() as usize)
    };
    let y_of = |gf: f64| -> Option<usize> {
        if gf <= 0.0 {
            return None;
        }
        let t = (gf.ln() - gf_lo.ln()) / (gf_hi.ln() - gf_lo.ln());
        if !(0.0..=1.0).contains(&t) {
            return None;
        }
        Some(PLOT_H - 1 - (t * (PLOT_H - 1) as f64).round() as usize)
    };

    let mut grid = vec![vec![' '; PLOT_W]; PLOT_H];
    // the roofline itself
    #[allow(clippy::needless_range_loop)] // px indexes rows selected by y_of
    for px in 0..PLOT_W {
        let t = px as f64 / (PLOT_W - 1) as f64;
        let ai = (ai_lo.ln() + t * (ai_hi.ln() - ai_lo.ln())).exp();
        if let Some(py) = y_of(rl.attainable(ai)) {
            let mem_bound = rl.memory_bound(ai);
            let ch = if mem_bound { '/' } else { '-' };
            if grid[py][px] == ' ' {
                grid[py][px] = ch;
            }
        }
    }
    // the measured points
    for (config, _stencil, ai, gflops) in &panel.points {
        if let (Some(px), Some(py)) = (x_of(*ai), y_of(*gflops)) {
            let g = config_glyph(*config);
            let cell = &mut grid[py][px];
            *cell = match *cell {
                ' ' | '/' | '-' => g,
                prev if prev == g => g,
                _ => '*',
            };
        }
    }

    let mut out = format!(
        "{} / {}  (peak {:.0} GFLOP/s, {:.0} GB/s; a=array c=array-codegen B=bricks-codegen *=overlap)\n",
        panel.gpu, panel.model, rl.peak_gflops, rl.bandwidth_gbs
    );
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{:>8.0} |", gf_hi)
        } else if i == PLOT_H - 1 {
            format!("{:>8.0} |", gf_lo)
        } else {
            "         |".to_string()
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str("         +");
    out.push_str(&"-".repeat(PLOT_W));
    out.push('\n');
    out.push_str(&format!(
        "          {:<10} AI (FLOP/Byte), log scale {:>40}\n",
        ai_lo, ai_hi
    ));
    out
}

/// Render the Fig. 7 potential speed-up plane as ASCII: x = fraction of
/// theoretical AI, y = fraction of Roofline, both linear in `[0, 1]`,
/// with `2x` and `4x` iso-potential curves.
pub fn speedup_ascii(points: &[SpeedupPoint]) -> String {
    let mut grid = vec![vec![' '; PLOT_W]; PLOT_H];
    let x_of = |v: f64| ((v.clamp(0.0, 1.0)) * (PLOT_W - 1) as f64).round() as usize;
    let y_of = |v: f64| PLOT_H - 1 - (v.clamp(0.0, 1.0) * (PLOT_H - 1) as f64).round() as usize;

    for s in [2.0f64, 4.0] {
        #[allow(clippy::needless_range_loop)] // px indexes rows selected by y_of
        for px in 0..PLOT_W {
            let fai = px as f64 / (PLOT_W - 1) as f64;
            if fai <= 0.0 {
                continue;
            }
            let fr = 1.0 / (s * fai);
            if fr <= 1.0 {
                let py = y_of(fr);
                if grid[py][px] == ' ' {
                    grid[py][px] = '.';
                }
            }
        }
    }
    for p in points {
        let glyph = p
            .label
            .split_whitespace()
            .nth(1)
            .and_then(|g| g.chars().next())
            .unwrap_or('?');
        let (px, py) = (x_of(p.frac_ai), y_of(p.frac_roofline));
        let cell = &mut grid[py][px];
        *cell = match *cell {
            ' ' | '.' => glyph,
            prev if prev == glyph => glyph,
            _ => '*',
        };
    }

    let mut out =
        String::from("potential speed-up plane (A=A100 M=MI250X P=PVC, '.' = 2x/4x iso-curves)\n");
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            "frac 1.0 |".to_string()
        } else if i == PLOT_H - 1 {
            "     0.0 |".to_string()
        } else {
            "         |".to_string()
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str("         +");
    out.push_str(&"-".repeat(PLOT_W));
    out.push_str("\n          0.0        fraction of theoretical AI         1.0\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{fig3, fig7};
    use crate::testutil::shared_sweep;

    #[test]
    fn roofline_plot_contains_all_glyphs() {
        let panels = fig3(shared_sweep());
        let s = roofline_ascii(&panels[0]);
        assert!(s.contains('B'));
        assert!(s.contains('/'), "memory diagonal missing");
        assert!(s.lines().count() > PLOT_H);
    }

    #[test]
    fn roofline_plot_header_row_has_no_points() {
        // nothing can sit above the plot's top (1.2x the compute peak)
        let panels = fig3(shared_sweep());
        for p in &panels {
            let s = roofline_ascii(p);
            let top = s.lines().nth(1).unwrap(); // first grid row
            assert!(
                !top.contains('B') && !top.contains('a') && !top.contains('*'),
                "{} {}: point above the plot ceiling",
                p.gpu,
                p.model
            );
        }
    }

    #[test]
    fn speedup_plot_draws_points_and_curves() {
        let pts = fig7(shared_sweep());
        let s = speedup_ascii(&pts);
        assert!(s.contains('.'));
        assert!(s.contains('A') || s.contains('*'));
        assert!(s.contains("fraction of theoretical AI"));
    }
}
