//! Experiment CLI: regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run -p experiments --release -- --all            # 256³ sweep
//! cargo run -p experiments --release -- --all --full     # paper's 512³
//! cargo run -p experiments --release -- --table3 --fig5 --n 128
//! cargo run -p experiments --release -- --listings       # Fig. 1/2 text
//! ```
//!
//! Artifacts (CSV/JSON) are written to `artifacts/` unless `--out DIR`.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use brick_vm::ExecutionMode;
use experiments::report::*;
use experiments::{
    bench_exec, bench_sim, figures, golden, tables, temporal, tune, ExperimentParams, SweepOptions,
};
use gpu_sim::SimFidelity;

struct Args {
    n: usize,
    n_explicit: bool,
    out: PathBuf,
    trace: bool,
    prof: bool,
    jobs: Option<usize>,
    no_cache: bool,
    fidelity: Option<SimFidelity>,
    exec_mode: Option<ExecutionMode>,
    bench_sim: bool,
    bench_exec: bool,
    bench_temporal: bool,
    bench_tune: bool,
    temporal: bool,
    temporal_degree: Option<u32>,
    tune: bool,
    tune_space: tune::SpaceChoice,
    bless: bool,
    table1: bool,
    table2: bool,
    table3: bool,
    table4: bool,
    table5: bool,
    compare: bool,
    fig3: bool,
    fig4: bool,
    fig5: bool,
    fig6: bool,
    fig7: bool,
    listings: bool,
}

impl Args {
    fn needs_sweep(&self) -> bool {
        self.table3
            || self.table5
            || self.compare
            || self.fig3
            || self.fig4
            || self.fig5
            || self.fig6
            || self.fig7
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        n: ExperimentParams::default().n,
        n_explicit: false,
        out: PathBuf::from("artifacts"),
        trace: false,
        prof: false,
        jobs: None,
        no_cache: false,
        fidelity: None,
        exec_mode: None,
        bench_sim: false,
        bench_exec: false,
        bench_temporal: false,
        bench_tune: false,
        temporal: false,
        temporal_degree: None,
        tune: false,
        tune_space: tune::SpaceChoice::Full,
        bless: false,
        table1: false,
        table2: false,
        table3: false,
        table4: false,
        table5: false,
        compare: false,
        fig3: false,
        fig4: false,
        fig5: false,
        fig6: false,
        fig7: false,
        listings: false,
    };
    let mut it = std::env::args().skip(1);
    let mut any = false;
    while let Some(a) = it.next() {
        any = true;
        match a.as_str() {
            "--all" => {
                args.table1 = true;
                args.table2 = true;
                args.table3 = true;
                args.table4 = true;
                args.table5 = true;
                args.compare = true;
                args.fig3 = true;
                args.fig4 = true;
                args.fig5 = true;
                args.fig6 = true;
                args.fig7 = true;
                args.listings = true;
            }
            "--table1" => args.table1 = true,
            "--table2" => args.table2 = true,
            "--table3" => args.table3 = true,
            "--table4" => args.table4 = true,
            "--table5" => args.table5 = true,
            "--compare" => args.compare = true,
            "--fig3" => args.fig3 = true,
            "--fig4" => args.fig4 = true,
            "--fig5" => args.fig5 = true,
            "--fig6" => args.fig6 = true,
            "--fig7" => args.fig7 = true,
            "--listings" => args.listings = true,
            "--trace" => args.trace = true,
            "--prof" => {
                args.prof = true;
                args.trace = true; // profiles are built from the span capture
            }
            "--bless" => args.bless = true,
            "--no-cache" => args.no_cache = true,
            "--jobs" | "-j" => {
                args.jobs = Some(
                    it.next()
                        .ok_or("--jobs needs a value")?
                        .parse()
                        .map_err(|e| format!("--jobs: {e}"))?,
                );
            }
            "--full" => {
                args.n = ExperimentParams::paper_full().n;
                args.n_explicit = true;
            }
            "--n" => {
                args.n = it
                    .next()
                    .ok_or("--n needs a value")?
                    .parse()
                    .map_err(|e| format!("--n: {e}"))?;
                args.n_explicit = true;
            }
            "--fidelity" => {
                args.fidelity = Some(
                    it.next()
                        .ok_or("--fidelity needs a value (exact|fast)")?
                        .parse()
                        .map_err(|e: String| format!("--fidelity: {e}"))?,
                );
            }
            "--bench-sim" => args.bench_sim = true,
            "--bench-exec" => args.bench_exec = true,
            "--bench-temporal" => args.bench_temporal = true,
            "--bench-tune" => args.bench_tune = true,
            "--tune" => args.tune = true,
            "--tune-space" => {
                let v = it
                    .next()
                    .ok_or("--tune-space needs a value (full|smoke|minimal)")?;
                args.tune_space =
                    tune::SpaceChoice::parse(&v).map_err(|e| format!("--tune-space: {e}"))?;
            }
            "--temporal" => args.temporal = true,
            "--temporal-degree" => {
                let t: u32 = it
                    .next()
                    .ok_or("--temporal-degree needs a value (1..=4)")?
                    .parse()
                    .map_err(|e| format!("--temporal-degree: {e}"))?;
                if !(1..=4).contains(&t) {
                    return Err(format!(
                        "--temporal-degree {t}: the 4x4 transverse block caps T at 4"
                    ));
                }
                args.temporal = true;
                args.temporal_degree = Some(t);
            }
            "--exec-mode" => {
                let v = it
                    .next()
                    .ok_or("--exec-mode needs a value (scalar|auto|avx2|neon)")?;
                args.exec_mode =
                    Some(ExecutionMode::parse(&v).map_err(|e| format!("--exec-mode: {e}"))?);
            }
            "--out" => args.out = PathBuf::from(it.next().ok_or("--out needs a value")?),
            "--help" | "-h" => {
                return Err(HELP.to_string());
            }
            other => return Err(format!("unknown argument {other}\n{HELP}")),
        }
    }
    if !any {
        return Err(HELP.to_string());
    }
    Ok(args)
}

const HELP: &str = "usage: experiments [--all] [--table1..5] [--compare] [--fig3..7] [--listings]
                   [--temporal] [--temporal-degree T] [--n N] [--full]
                   [--tune] [--tune-space full|smoke|minimal]
                   [--out DIR] [--jobs N] [--no-cache]
                   [--fidelity exact|fast] [--bench-sim] [--bench-exec]
                   [--bench-temporal] [--bench-tune]
                   [--exec-mode scalar|auto|avx2|neon]
                   [--bless] [--trace] [--prof]

Regenerates the tables and figures of 'Performance Portability Evaluation
of Blocked Stencil Computations on GPUs' (SC-W 2023) on the simulated
GPU substrate. --full runs the paper's 512^3 grid (slow); the default is
256^3. Artifacts are written to DIR (default ./artifacts).

Sweep cells run in parallel: --jobs N (or BRICK_JOBS=N) sets the worker
count, default all hardware threads; results are byte-identical at any
jobs count. Completed cells are cached under DIR/simcache so unchanged
reruns are incremental; --no-cache disables the cache for this run.
--bless reruns the pinned 64^3 golden sweep (plus the temporal sweep and
the smoke-space tuner run) and rewrites the checked-in golden artifacts
under crates/experiments/tests/golden (only after an intentional model
change — see EXPERIMENTS.md).

--fidelity selects the memory-simulation path: 'fast' (default) replays
one compiled access stream per block equivalence class, 'exact' traces
every block through the interpreter. Both produce bit-identical results
(enforced in CI); exact exists as the oracle and for debugging the fast
path. --bench-sim measures both and writes DIR/BENCH_sim.json: cold/warm
sweep throughput at 64^3 plus the exact-vs-fast wall-time ratio of the
star-2 CUDA/A100 cell (128^3, or N^3 with --n/--full) and again at the
paper's full 512^3; it exits non-zero if the fast path is slower than
exact at either size.

--temporal runs the temporal-blocking sweep: every paper stencil at
every feasible fusion degree T (T*radius <= 4 under the 4x4 block),
bricks codegen, across the full platform matrix. Fused kernels stream T
timesteps through registers in one launch; each is statically verified
against the T-fold composed stencil before simulation. Prints the
A100/CUDA AI-vs-T panel and writes DIR/temporal.csv, DIR/temporal.json
and DIR/manifest_temporal.json. --temporal-degree T restricts the
emitted records to degree T plus the T=1 baseline (the sweep itself is
cached per-degree, so narrowing is free on a warm cache).

--bench-temporal runs the temporal sweep at N^3 (default the sweep
default; --n/--full override) and writes DIR/BENCH_temporal.json. It
exits non-zero unless AI strictly increases with T for the fusible star
stencils on every platform and star-7's DRAM bytes per applied timestep
at its deepest degree is at most 0.45x the spatial baseline (A100/CUDA).

--tune searches the kernel-specialization space (vector width, fold
factor, transverse block, ordering, gather/scatter, interleave chunk,
temporal degree) for every paper stencil on all 6 platform pairs at 64^3
(--n overrides). Invalid cells are rejected by per-target validity
predicates before compilation; candidates whose Roofline upper bound
cannot beat the paper baseline are pruned before simulation; survivors
are ranked per group with the paper configuration always measured as the
anchor. Prints the tuned-vs-paper table and writes DIR/tune.json,
DIR/tune_compare.json and DIR/manifest_tune.json. --tune-space selects
the candidate grid: 'full' (default, >10k valid cells across the
matrix), 'smoke' (~200, CI) or 'minimal'. Results are cached under
DIR/simcache keyed by the full specialization vector, so reruns and
narrowed spaces are incremental.

--bench-tune runs the tuner twice against a scratch cache (cold, then
warm) at 64^3 over --tune-space and writes DIR/BENCH_tune.json. It exits
non-zero unless the warm rerun costs under 10% of the cold wall time,
every warm cell is a cache hit, and the two ranked tables are identical.

--bench-exec measures the native CPU execution backend and writes
DIR/BENCH_exec.json: the 7-point star at 512^3 (or N^3 with --n), bricks
layout, interpreter vs the backend selected by --exec-mode (default
'auto': AVX2 on x86_64, NEON on aarch64, portable otherwise). It prints
the detected CPU features and the dispatched backend, records the mode
in the run manifest, and exits non-zero if a SIMD backend runs below the
10x acceptance floor at full scale. --exec-mode also sets the dispatch
for any other numeric kernel execution in the process.

--trace records hierarchical spans of the run and writes DIR/trace.json
(Chrome trace_event format, loadable in chrome://tracing or Perfetto) and
DIR/spans.jsonl. Sweeps always write DIR/metrics.json and
DIR/manifest.json; inspect any of them with `bricks obs <file>`.
BRICK_LOG=info (or debug/trace, with module=level filters) enables
progress and diagnostic logging.

--prof implies --trace and additionally self-profiles the sweep: it
writes DIR/PROF_sweep.json (per-phase wall-time/allocation attribution
with duration histograms and the hottest cells) and DIR/sweep.folded (a
folded-stack flamegraph of the merged, jobs-invariant profile tree), and
prints the phase table. Render saved artifacts with `bricks prof sweep`.";

fn main() -> ExitCode {
    brick_obs::init();
    brick_prof::init();
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if args.trace {
        brick_obs::set_tracing(true);
    }
    if let Some(mode) = args.exec_mode {
        // Make the choice the process default so every numeric kernel
        // execution (not just --bench-exec) dispatches under it.
        std::env::set_var("BRICK_EXEC", mode.to_string());
    }
    let params = ExperimentParams { n: args.n };
    if let Err(e) = params.validate() {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("cannot create {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }

    if args.listings {
        println!("{}", figures::fig1_fig2_listings());
    }
    if args.table1 {
        println!("== Table 1: systems and toolchains ==");
        println!("{}", render_table1(&tables::table1()));
    }
    if args.table2 {
        println!("== Table 2: stencil suite ==");
        println!("{}", render_table2(&tables::table2()));
    }
    if args.table4 {
        println!("== Table 4: theoretical arithmetic intensity ==");
        println!("{}", render_table4(&tables::table4()));
    }

    let sweep_opts = |params: ExperimentParams| {
        let mut opts = SweepOptions::new(params);
        if let Some(n) = args.jobs {
            opts.jobs = experiments::Jobs::N(n);
        }
        if !args.no_cache {
            opts.cache_dir = Some(args.out.join("simcache"));
        }
        if let Some(f) = args.fidelity {
            opts.fidelity = f;
        }
        opts
    };

    if args.bench_sim {
        let bench_n = if args.n_explicit {
            args.n
        } else {
            bench_sim::BENCH_FIDELITY_N
        };
        eprintln!(
            "benchmarking simulator: {0}^3 sweep throughput + exact-vs-fast at {bench_n}^3...",
            bench_sim::BENCH_SWEEP_N
        );
        match bench_sim::run_bench_sim(bench_n, args.jobs, &args.out) {
            Ok(b) => {
                eprintln!(
                    "sweep: {} cells, cold {:.1}s ({:.1} cells/s), warm {:.1}s ({:.1} cells/s)",
                    b.sweep.cells,
                    b.sweep.cold_wall_s,
                    b.sweep.cold_cells_per_s,
                    b.sweep.warm_wall_s,
                    b.sweep.warm_cells_per_s
                );
                eprintln!(
                    "fidelity ({} {} {}/{} at {}^3): exact {:.2}s, fast {:.2}s — {:.1}x speedup",
                    b.fidelity.stencil,
                    b.fidelity.config,
                    b.fidelity.gpu,
                    b.fidelity.model,
                    b.fidelity.n,
                    b.fidelity.exact_wall_s,
                    b.fidelity.fast_wall_s,
                    b.fidelity.speedup
                );
                if let Some(f) = &b.fidelity_full {
                    eprintln!(
                        "fidelity (paper scale, {}^3): exact {:.2}s, fast {:.2}s — {:.1}x speedup",
                        f.n, f.exact_wall_s, f.fast_wall_s, f.speedup
                    );
                }
                eprintln!("wrote {}", args.out.join("BENCH_sim.json").display());
            }
            Err(e) => {
                eprintln!("bench-sim failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if args.bench_exec {
        let mode = args.exec_mode.unwrap_or(ExecutionMode::Auto);
        let bench_n = if args.n_explicit {
            args.n
        } else {
            bench_exec::BENCH_EXEC_N
        };
        let features = brick_vm::CpuFeatures::detect();
        eprintln!(
            "benchmarking execution backend: star-7 bricks at {bench_n}^3, \
             cpu features [{features}], mode {mode} -> {}",
            brick_vm::resolve_with(mode, features)
                .map(|b| b.to_string())
                .unwrap_or_else(|e| format!("unsupported ({e})"))
        );
        match bench_exec::run_bench_exec(bench_n, mode, Some(&args.out)) {
            Ok(b) => {
                eprintln!(
                    "interpreter: {:.2}s ({:.1} Mpts/s)  {}: {:.2}s ({:.1} Mpts/s) — {:.1}x speedup",
                    b.interpreter.wall_s,
                    b.interpreter.points_per_s / 1e6,
                    b.native.backend,
                    b.native.wall_s,
                    b.native.points_per_s / 1e6,
                    b.speedup
                );
                eprintln!("wrote {}", args.out.join("BENCH_exec.json").display());
            }
            Err(e) => {
                eprintln!("bench-exec failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if args.bench_temporal {
        let bench_n = if args.n_explicit { args.n } else { params.n };
        eprintln!("benchmarking temporal blocking: fused sweep at {bench_n}^3...");
        match temporal::run_bench_temporal(bench_n, args.jobs, &args.out) {
            Ok(b) => {
                eprintln!(
                    "star-7 DRAM/pt-step at t{}: {:.3}x of t1 (gate <= {})",
                    b.star7_max_degree,
                    b.star7_dram_ratio,
                    temporal::STAR7_DRAM_RATIO_MAX
                );
                eprintln!("wrote {}", args.out.join("BENCH_temporal.json").display());
            }
            Err(e) => {
                eprintln!("bench-temporal gate failed:\n{e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if args.bench_tune {
        let bench_n = if args.n_explicit {
            args.n
        } else {
            tune::TUNE_N
        };
        eprintln!(
            "benchmarking autotuner: {} space, cold + warm at {bench_n}^3...",
            args.tune_space
        );
        match tune::run_bench_tune(bench_n, args.jobs, &args.out, args.tune_space) {
            Ok(b) => {
                eprintln!(
                    "{} cells ({} pruned, {} skipped): cold {:.1}s, warm {:.1}s ({:.1}% of cold, gate < {:.0}%)",
                    b.cells,
                    b.pruned,
                    b.skipped,
                    b.cold_wall_s,
                    b.warm_wall_s,
                    b.warm_frac * 100.0,
                    tune::WARM_FRAC_MAX * 100.0
                );
                eprintln!("wrote {}", args.out.join("BENCH_tune.json").display());
            }
            Err(e) => {
                eprintln!("bench-tune gate failed:\n{e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if args.tune {
        let tune_n = if args.n_explicit {
            args.n
        } else {
            tune::TUNE_N
        };
        eprintln!(
            "tuning: {} space x paper stencils x 6 platform pairs at {tune_n}^3...",
            args.tune_space
        );
        let t0 = Instant::now();
        let cache_dir = (!args.no_cache).then(|| args.out.join("simcache"));
        let opts = tune::tune_options(tune_n, args.jobs, cache_dir, args.tune_space.space());
        let report = match tune::run_tune(&opts) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("tune failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        eprintln!(
            "tune done in {:.1}s: {} cells evaluated, {} pruned, {} skipped",
            t0.elapsed().as_secs_f64(),
            report.manifest.tune_valid_cells,
            report.manifest.tune_pruned_cells,
            report.manifest.tune_skipped_cells
        );
        println!("== Tuned vs paper configuration ==");
        let rows = tune::tuned_vs_paper(&report);
        println!("{}", tune::render_tuned_vs_paper(&rows));
        let _ = write_json(&report, &args.out.join("tune.json"));
        let _ = write_json(&rows, &args.out.join("tune_compare.json"));
        let _ = write_json(&report.manifest, &args.out.join("manifest_tune.json"));
        eprintln!("wrote {}", args.out.join("tune.json").display());
    }

    if args.temporal {
        eprintln!(
            "running temporal sweep at {0}^3 (paper stencils x feasible T x 6 platform pairs)...",
            params.n
        );
        let t0 = Instant::now();
        // same cache dir as the base sweep: cell keys carry T, so fused
        // and unfused records can never alias
        let opts = sweep_opts(params);
        let tsweep = match experiments::temporal_sweep_with(&opts) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("temporal sweep failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        eprintln!("temporal sweep done in {:.1}s", t0.elapsed().as_secs_f64());
        let shown = match args.temporal_degree {
            // keep the T=1 baseline rows so the requested degree has a
            // reference to be read against
            Some(t) => experiments::TemporalSweep {
                records: tsweep
                    .records
                    .iter()
                    .filter(|r| r.temporal_degree == t || r.temporal_degree == 1)
                    .cloned()
                    .collect(),
                ..tsweep.clone()
            },
            None => tsweep.clone(),
        };
        println!("== Temporal blocking: AI and DRAM bytes/point vs T (A100/CUDA) ==");
        println!("{}", render_temporal(&shown));
        if let Err(e) = write_temporal_csv(&shown, &args.out.join("temporal.csv")) {
            eprintln!("warning: could not write temporal.csv: {e}");
        }
        let _ = write_json(&shown, &args.out.join("temporal.json"));
        let _ = write_json(&tsweep.manifest, &args.out.join("manifest_temporal.json"));
    }

    if args.bless {
        eprintln!(
            "blessing golden artifacts from a fresh {0}^3 sweep...",
            golden::GOLDEN_N
        );
        let sweep = match experiments::sweep_with(&sweep_opts(ExperimentParams {
            n: golden::GOLDEN_N,
        })) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("golden sweep failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        match golden::bless(&sweep, &golden::golden_dir()) {
            Ok(paths) => {
                for p in paths {
                    eprintln!("blessed {}", p.display());
                }
            }
            Err(e) => {
                eprintln!("could not write goldens: {e}");
                return ExitCode::FAILURE;
            }
        }
        eprintln!(
            "blessing temporal golden artifacts from a fresh {0}^3 temporal sweep...",
            golden::GOLDEN_N
        );
        let tsweep = match experiments::temporal_sweep_with(&sweep_opts(ExperimentParams {
            n: golden::GOLDEN_N,
        })) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("temporal golden sweep failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        match golden::bless_temporal(&tsweep, &golden::golden_dir()) {
            Ok(paths) => {
                for p in paths {
                    eprintln!("blessed {}", p.display());
                }
            }
            Err(e) => {
                eprintln!("could not write temporal goldens: {e}");
                return ExitCode::FAILURE;
            }
        }
        eprintln!(
            "blessing tuner golden artifact from a fresh {0}^3 smoke tune...",
            golden::GOLDEN_N
        );
        let report = match tune::run_tune(&tune::golden_tune_options(
            args.jobs,
            (!args.no_cache).then(|| args.out.join("simcache")),
        )) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("tuner golden run failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        match golden::bless_tune(&report, &golden::golden_dir()) {
            Ok(paths) => {
                for p in paths {
                    eprintln!("blessed {}", p.display());
                }
            }
            Err(e) => {
                eprintln!("could not write tuner golden: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if !args.needs_sweep() {
        return ExitCode::SUCCESS;
    }

    eprintln!(
        "running full sweep at {0}^3 (6 stencils x 3 configs x 6 platform pairs)...",
        params.n
    );
    let t0 = Instant::now();
    let sweep = match experiments::sweep_with(&sweep_opts(params)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("sweep done in {:.1}s", t0.elapsed().as_secs_f64());
    if let Err(e) = write_sweep_csv(&sweep, &args.out.join("sweep.csv")) {
        eprintln!("warning: could not write sweep.csv: {e}");
    }
    let _ = write_json(&sweep.manifest, &args.out.join("manifest.json"));
    let _ = write_json(
        &brick_obs::metrics::snapshot(),
        &args.out.join("metrics.json"),
    );
    if brick_obs::tracing_enabled() {
        for (name, text) in [
            ("trace.json", brick_obs::trace::chrome_trace_json()),
            ("spans.jsonl", brick_obs::trace::spans_jsonl()),
        ] {
            let path = args.out.join(name);
            match std::fs::write(&path, text) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => eprintln!("warning: could not write {name}: {e}"),
            }
        }
    }
    if args.prof {
        let spans = brick_obs::trace::spans_data();
        let profile = brick_prof::SweepProfile::from_spans(&spans);
        let tree = brick_prof::ProfileTree::build(&spans);
        eprintln!("{}", brick_prof::render_sweep_profile(&profile));
        for (name, text) in [
            (
                "PROF_sweep.json",
                serde_json::to_string_pretty(&profile).unwrap_or_default(),
            ),
            ("sweep.folded", tree.folded()),
        ] {
            let path = args.out.join(name);
            match std::fs::write(&path, text) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => eprintln!("warning: could not write {name}: {e}"),
            }
        }
    }

    if args.table3 {
        println!("== Table 3: P from fraction of Roofline (bricks codegen) ==");
        let t = tables::table3(&sweep);
        println!("{}", render_portability(&t));
        let _ = write_json(&t, &args.out.join("table3.json"));
    }
    if args.table5 {
        println!("== Table 5: P from fraction of theoretical AI (bricks codegen) ==");
        let t = tables::table5(&sweep);
        println!("{}", render_portability(&t));
        let _ = write_json(&t, &args.out.join("table5.json"));
    }
    if args.compare {
        println!("== measured vs paper (Tables 3 and 5) ==");
        let (c3, c5) = experiments::paper::compare_all(&sweep);
        println!("{}", experiments::paper::render_comparison(&c3));
        println!("{}", experiments::paper::render_comparison(&c5));
        let _ = write_json(&c3, &args.out.join("compare_table3.json"));
        let _ = write_json(&c5, &args.out.join("compare_table5.json"));
    }
    if args.fig3 {
        println!("== Fig. 3: Rooflines ==");
        let panels = figures::fig3(&sweep);
        println!("{}", render_fig3(&panels));
        for p in &panels {
            println!("{}", experiments::plot::roofline_ascii(p));
        }
        let _ = write_json(&panels, &args.out.join("fig3.json"));
    }
    if args.fig4 {
        println!("== Fig. 4: L1 data movement ==");
        let groups = figures::fig4(&sweep);
        println!("{}", render_fig4(&groups));
        let _ = write_json(&groups, &args.out.join("fig4.json"));
    }
    if args.fig5 {
        let f = figures::fig5(&sweep);
        println!("{}", render_correlation(&f, "Fig. 5"));
        let _ = write_json(&f, &args.out.join("fig5.json"));
    }
    if args.fig6 {
        let f = figures::fig6(&sweep);
        println!("{}", render_correlation(&f, "Fig. 6"));
        let _ = write_json(&f, &args.out.join("fig6.json"));
    }
    if args.fig7 {
        println!("== Fig. 7: potential speed-up (bricks codegen) ==");
        let pts = figures::fig7(&sweep);
        println!("{}", experiments::plot::speedup_ascii(&pts));
        for p in &pts {
            println!(
                "  {:24} frac_AI {:.2}  frac_roofline {:.2}  potential {:.1}x",
                p.label,
                p.frac_ai,
                p.frac_roofline,
                p.potential()
            );
        }
        let _ = write_json(&pts, &args.out.join("fig7.json"));
    }
    ExitCode::SUCCESS
}
