//! Experiment configuration: the three kernel configurations of §4.4 and
//! the sweep parameters.

use serde::{Deserialize, Serialize};
use std::fmt;

use brick_codegen::LayoutKind;

/// The data-layout × code-generation configurations the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelConfig {
    /// Conventional array layout, 3-D tiling, native scalar compilation.
    Array,
    /// Conventional array layout with the vector code generator —
    /// isolates the codegen contribution.
    ArrayCodegen,
    /// Brick layout with the vector code generator — adds the data-layout
    /// contribution.
    BricksCodegen,
}

impl KernelConfig {
    /// The three configurations, in the paper's presentation order.
    pub fn all() -> [KernelConfig; 3] {
        [
            KernelConfig::Array,
            KernelConfig::ArrayCodegen,
            KernelConfig::BricksCodegen,
        ]
    }

    /// Data layout of the configuration.
    pub fn layout(&self) -> LayoutKind {
        match self {
            KernelConfig::Array | KernelConfig::ArrayCodegen => LayoutKind::Array,
            KernelConfig::BricksCodegen => LayoutKind::Brick,
        }
    }

    /// Whether the vector code generator is applied.
    pub fn codegen(&self) -> bool {
        !matches!(self, KernelConfig::Array)
    }

    /// The paper's label.
    pub fn label(&self) -> &'static str {
        match self {
            KernelConfig::Array => "array",
            KernelConfig::ArrayCodegen => "array codegen",
            KernelConfig::BricksCodegen => "bricks codegen",
        }
    }
}

impl fmt::Display for KernelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Sweep parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExperimentParams {
    /// Cubic domain extent. The paper uses 512; the default 256 keeps a
    /// full sweep in CI time. Must be a multiple of every brick extent
    /// (i.e. of 64).
    pub n: usize,
}

impl Default for ExperimentParams {
    fn default() -> Self {
        ExperimentParams { n: 256 }
    }
}

impl ExperimentParams {
    /// The paper's full problem size (`512³` doubles).
    pub fn paper_full() -> Self {
        ExperimentParams { n: 512 }
    }

    /// Validate divisibility by the largest brick extent (MI250X, 64).
    pub fn validate(&self) -> Result<(), String> {
        if self.n == 0 || !self.n.is_multiple_of(64) {
            return Err(format!(
                "domain extent {} must be a positive multiple of 64 \
                 (the widest brick, MI250X wave width)",
                self.n
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_layouts() {
        assert_eq!(KernelConfig::Array.layout(), LayoutKind::Array);
        assert_eq!(KernelConfig::ArrayCodegen.layout(), LayoutKind::Array);
        assert_eq!(KernelConfig::BricksCodegen.layout(), LayoutKind::Brick);
        assert!(!KernelConfig::Array.codegen());
        assert!(KernelConfig::ArrayCodegen.codegen());
    }

    #[test]
    fn labels_match_paper() {
        let labels: Vec<_> = KernelConfig::all().iter().map(|c| c.label()).collect();
        assert_eq!(labels, ["array", "array codegen", "bricks codegen"]);
    }

    #[test]
    fn params_validation() {
        assert!(ExperimentParams::default().validate().is_ok());
        assert!(ExperimentParams::paper_full().validate().is_ok());
        assert!(ExperimentParams { n: 100 }.validate().is_err());
        assert!(ExperimentParams { n: 0 }.validate().is_err());
        assert_eq!(ExperimentParams::paper_full().n, 512);
    }
}
