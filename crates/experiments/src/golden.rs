//! Golden-artifact regression machinery.
//!
//! A small set of checked-in artifacts pins the numerical output of the
//! whole pipeline at a fixed domain size ([`GOLDEN_N`]): Table 4
//! (theoretical AI), the A100/CUDA Roofline panel of Fig. 3, and the
//! Pennycook portability table (Table 3). Any refactor of the sweep
//! engine — parallelism, caching, memoisation — must reproduce them
//! bit-for-bit in the integer columns and to 1e-9 relative tolerance in
//! the float columns; `tests/golden.rs` enforces that, and
//! `cargo run -p experiments -- --bless` regenerates the files after an
//! *intentional* model change.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use gpu_sim::{GpuKind, ProgModel};
use serde_json::Value;

use brick_tuner::TuneReport;

use crate::figures;
use crate::runner::Sweep;
use crate::tables;
use crate::temporal::TemporalSweep;

/// Domain size the golden artifacts are pinned at — small enough that a
/// fresh sweep fits in a CI test, large enough to exercise every cache
/// level of the simulator.
pub const GOLDEN_N: usize = 64;

/// Relative tolerance for float columns. Integer columns must match
/// exactly.
pub const FLOAT_RTOL: f64 = 1e-9;

/// Directory the golden files are checked in under.
pub fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Render the golden artifacts from a sweep (which must have run at
/// [`GOLDEN_N`]): `(file name, contents)` pairs.
///
/// Floats are written with `{}` (shortest round-trip representation), so
/// the files carry full precision and [`FLOAT_RTOL`] only has to absorb
/// genuine numerical differences, never formatting loss.
pub fn golden_artifacts(sweep: &Sweep) -> Vec<(&'static str, String)> {
    assert_eq!(
        sweep.params.n, GOLDEN_N,
        "golden artifacts are pinned at n={GOLDEN_N}"
    );

    // Table 4: static theoretical-AI table (pipeline-independent, guards
    // the DSL analysis layer).
    let mut table4 = String::from("shape,points,theoretical_ai\n");
    for row in tables::table4() {
        let _ = writeln!(
            table4,
            "{},{},{}",
            row.shape, row.points, row.theoretical_ai
        );
    }

    // Fig. 3, A100/CUDA panel: guards codegen, the memory/timing
    // simulation and the empirical Roofline on the reference platform.
    let panel = figures::fig3(sweep)
        .into_iter()
        .find(|p| p.gpu == GpuKind::A100 && p.model == ProgModel::Cuda)
        .expect("A100/CUDA panel present in every full sweep");
    let fig3 = serde_json::to_string_pretty(&panel).expect("panel serializes");

    // Table 3: the paper's headline metric — guards the portability
    // aggregation across all five platform columns.
    let table3 = serde_json::to_string_pretty(&tables::table3(sweep)).expect("table serializes");

    vec![
        ("table4.csv", table4),
        ("fig3_a100_cuda.json", fig3),
        ("table3.json", table3),
    ]
}

/// Render the temporal-sweep golden artifacts (which must have run at
/// [`GOLDEN_N`]): the AN5D-style AI-vs-T and DRAM-bytes/point-vs-T
/// tables, pinned on the A100/CUDA reference panel.
pub fn temporal_artifacts(sweep: &TemporalSweep) -> Vec<(&'static str, String)> {
    assert_eq!(
        sweep.params.n, GOLDEN_N,
        "temporal golden artifacts are pinned at n={GOLDEN_N}"
    );
    let panel: Vec<_> = sweep
        .records
        .iter()
        .filter(|r| r.gpu == GpuKind::A100 && r.model == ProgModel::Cuda)
        .collect();

    // AI-vs-T: arithmetic intensity (and the FLOP rate it buys) per
    // fusion degree — guards the fused codegen + FLOP normalisation.
    let mut ai = String::from("stencil,temporal_degree,ai,gflops\n");
    for r in &panel {
        let _ = writeln!(
            ai,
            "{},{},{},{}",
            r.stencil, r.temporal_degree, r.ai, r.gflops
        );
    }

    // DRAM-bytes/point-vs-T: the launch's HBM traffic and the per-applied-
    // timestep normalisation — guards the memory simulation of the grown
    // fused footprint.
    let mut dram = String::from("stencil,temporal_degree,dram_bytes,dram_bytes_per_point\n");
    for r in &panel {
        let _ = writeln!(
            dram,
            "{},{},{},{}",
            r.stencil, r.temporal_degree, r.dram_bytes, r.dram_bytes_per_point
        );
    }

    vec![("temporal_ai.csv", ai), ("temporal_dram.csv", dram)]
}

/// How many ranked rows the tuner golden pins.
pub const TUNE_GOLDEN_TOP_K: usize = 5;

/// Render the tuner golden artifact from a tune report (which must have
/// run at [`GOLDEN_N`]): the blessed top-K ranked table for the 7-point
/// star on the A100/CUDA reference panel, `tune_star7_a100.json`.
///
/// The specialization vectors and their fingerprints are integer/string
/// fields (exact match); the performance columns are floats under
/// [`FLOAT_RTOL`]. Any change to the search order, validity predicates,
/// pruning bounds or ranking tie-break that alters the winners shows up
/// here.
pub fn tune_artifacts(report: &TuneReport) -> Vec<(&'static str, String)> {
    assert_eq!(
        report.n, GOLDEN_N,
        "tuner golden artifact is pinned at n={GOLDEN_N}"
    );
    let group = report
        .group(GpuKind::A100, ProgModel::Cuda, "7pt")
        .expect("7pt A100/CUDA group present in every tune report");

    // the vendored serde derive does not handle lifetime parameters, so
    // the golden view owns its rows
    #[derive(serde::Serialize)]
    struct TuneGolden {
        n: usize,
        space_fingerprint: u64,
        baseline_fingerprint: u64,
        top: Vec<brick_tuner::TunedRecord>,
    }
    let golden = TuneGolden {
        n: report.n,
        space_fingerprint: report.space_fingerprint,
        baseline_fingerprint: group.baseline.fingerprint,
        top: group
            .ranked
            .iter()
            .take(TUNE_GOLDEN_TOP_K)
            .cloned()
            .collect(),
    };
    let json = serde_json::to_string_pretty(&golden).expect("tune golden serializes");
    vec![("tune_star7_a100.json", json)]
}

fn write_files(artifacts: Vec<(&'static str, String)>, dir: &Path) -> io::Result<Vec<PathBuf>> {
    fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    for (name, contents) in artifacts {
        let path = dir.join(name);
        fs::write(&path, contents)?;
        written.push(path);
    }
    Ok(written)
}

/// Regenerate the golden files under `dir` from `sweep`. Returns the
/// paths written.
pub fn bless(sweep: &Sweep, dir: &Path) -> io::Result<Vec<PathBuf>> {
    write_files(golden_artifacts(sweep), dir)
}

/// Regenerate the temporal golden files under `dir`. Returns the paths
/// written.
pub fn bless_temporal(sweep: &TemporalSweep, dir: &Path) -> io::Result<Vec<PathBuf>> {
    write_files(temporal_artifacts(sweep), dir)
}

/// Regenerate the tuner golden file under `dir`. Returns the paths
/// written.
pub fn bless_tune(report: &TuneReport, dir: &Path) -> io::Result<Vec<PathBuf>> {
    write_files(tune_artifacts(report), dir)
}

/// Compare a freshly-rendered artifact against its golden text.
///
/// `.csv` artifacts are compared row/field-wise; `.json` artifacts are
/// parsed and compared structurally. In both, integers and strings must
/// match exactly and floats to [`FLOAT_RTOL`] relative tolerance.
pub fn compare_artifact(name: &str, golden: &str, actual: &str) -> Result<(), String> {
    if name.ends_with(".json") {
        let g = serde_json::parse(golden).map_err(|e| format!("{name}: golden unparsable: {e}"))?;
        let a = serde_json::parse(actual).map_err(|e| format!("{name}: actual unparsable: {e}"))?;
        compare_value(name, &g, &a)
    } else {
        compare_csv(name, golden, actual)
    }
}

/// Run the full golden check: render artifacts from `sweep` and compare
/// each against the checked-in file under `dir`. Returns every mismatch
/// (empty = pass) so a failure reports all divergent artifacts at once.
pub fn check(sweep: &Sweep, dir: &Path) -> Vec<String> {
    check_files(golden_artifacts(sweep), dir)
}

/// [`check`] for the temporal golden artifacts.
pub fn check_temporal(sweep: &TemporalSweep, dir: &Path) -> Vec<String> {
    check_files(temporal_artifacts(sweep), dir)
}

/// [`check`] for the tuner golden artifact.
pub fn check_tune(report: &TuneReport, dir: &Path) -> Vec<String> {
    check_files(tune_artifacts(report), dir)
}

fn check_files(artifacts: Vec<(&'static str, String)>, dir: &Path) -> Vec<String> {
    let mut diffs = Vec::new();
    for (name, actual) in artifacts {
        let path = dir.join(name);
        match fs::read_to_string(&path) {
            Ok(golden) => {
                if let Err(d) = compare_artifact(name, &golden, &actual) {
                    diffs.push(d);
                }
            }
            Err(e) => diffs.push(format!(
                "{name}: missing golden {} ({e}); run `cargo run -p experiments -- --bless`",
                path.display()
            )),
        }
    }
    diffs
}

fn float_eq(g: f64, a: f64) -> bool {
    g == a || (g - a).abs() <= FLOAT_RTOL * g.abs().max(a.abs())
}

fn compare_csv(name: &str, golden: &str, actual: &str) -> Result<(), String> {
    let g_lines: Vec<&str> = golden.lines().collect();
    let a_lines: Vec<&str> = actual.lines().collect();
    if g_lines.len() != a_lines.len() {
        return Err(format!(
            "{name}: {} golden rows vs {} actual",
            g_lines.len(),
            a_lines.len()
        ));
    }
    for (row, (g, a)) in g_lines.iter().zip(&a_lines).enumerate() {
        let gf: Vec<&str> = g.split(',').collect();
        let af: Vec<&str> = a.split(',').collect();
        if gf.len() != af.len() {
            return Err(format!(
                "{name} row {row}: field count {} vs {}",
                gf.len(),
                af.len()
            ));
        }
        for (col, (gv, av)) in gf.iter().zip(&af).enumerate() {
            if gv == av {
                continue;
            }
            // a field is a float column iff the golden value has a
            // fractional/exponent marker; everything else is exact
            let is_float = gv.contains(['.', 'e', 'E']) && gv.parse::<f64>().is_ok();
            let close = is_float
                && matches!(
                    (gv.parse::<f64>(), av.parse::<f64>()),
                    (Ok(g), Ok(a)) if float_eq(g, a)
                );
            if !close {
                return Err(format!(
                    "{name} row {row} col {col}: golden `{gv}` vs actual `{av}`"
                ));
            }
        }
    }
    Ok(())
}

fn compare_value(path: &str, golden: &Value, actual: &Value) -> Result<(), String> {
    match (golden, actual) {
        (Value::F64(g), Value::F64(a)) if float_eq(*g, *a) => Ok(()),
        // integer vs float of the same value (e.g. `1.0` reparsed as `1`)
        (Value::F64(g), Value::U64(a)) | (Value::U64(a), Value::F64(g))
            if float_eq(*g, *a as f64) =>
        {
            Ok(())
        }
        (Value::Arr(g), Value::Arr(a)) => {
            if g.len() != a.len() {
                return Err(format!("{path}: {} elements vs {}", g.len(), a.len()));
            }
            for (i, (gv, av)) in g.iter().zip(a).enumerate() {
                compare_value(&format!("{path}[{i}]"), gv, av)?;
            }
            Ok(())
        }
        (Value::Obj(g), Value::Obj(a)) => {
            let g_keys: Vec<&String> = g.iter().map(|(k, _)| k).collect();
            let a_keys: Vec<&String> = a.iter().map(|(k, _)| k).collect();
            if g_keys != a_keys {
                return Err(format!("{path}: keys {g_keys:?} vs {a_keys:?}"));
            }
            for ((k, gv), (_, av)) in g.iter().zip(a) {
                compare_value(&format!("{path}.{k}"), gv, av)?;
            }
            Ok(())
        }
        _ if golden == actual => Ok(()),
        _ => Err(format!("{path}: golden {golden:?} vs actual {actual:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_tolerates_float_noise_but_not_integer_drift() {
        let golden = "shape,points,ai\nstar,7,0.10416666666666667\n";
        let noisy = "shape,points,ai\nstar,7,0.10416666666666670\n";
        assert!(compare_artifact("t.csv", golden, noisy).is_ok());
        let drifted = "shape,points,ai\nstar,8,0.10416666666666667\n";
        let err = compare_artifact("t.csv", golden, drifted).unwrap_err();
        assert!(err.contains("col 1"), "integer column is exact: {err}");
        let off = "shape,points,ai\nstar,7,0.105\n";
        assert!(compare_artifact("t.csv", golden, off).is_err());
    }

    #[test]
    fn json_compares_structurally_with_tolerance() {
        let golden = r#"{"a": [1, 2.0000000000], "b": "x"}"#;
        let same = r#"{"a": [1, 2.0000000004], "b": "x"}"#;
        assert!(compare_artifact("t.json", golden, same).is_ok());
        let diff = r#"{"a": [1, 2.1], "b": "x"}"#;
        let err = compare_artifact("t.json", golden, diff).unwrap_err();
        assert!(err.contains("a[1]"), "path points at the divergence: {err}");
        let reshaped = r#"{"a": [1], "b": "x"}"#;
        assert!(compare_artifact("t.json", golden, reshaped).is_err());
    }

    #[test]
    fn missing_golden_reports_bless_hint() {
        // the artifact renderers need the full matrix, so run a real (but
        // small) GOLDEN_N sweep against an empty golden directory
        let sweep = crate::runner::sweep(crate::config::ExperimentParams { n: GOLDEN_N });
        let dir = std::env::temp_dir().join(format!("golden_missing_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let diffs = check(&sweep, &dir);
        assert_eq!(diffs.len(), 3, "all three artifacts missing: {diffs:?}");
        assert!(diffs[0].contains("--bless"));
        // blessing into the directory makes the same check pass
        bless(&sweep, &dir).unwrap();
        assert!(check(&sweep, &dir).is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tune_bless_round_trips() {
        let report = crate::testutil::shared_tune_report();
        let dir = std::env::temp_dir().join(format!("golden_tune_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let diffs = check_tune(report, &dir);
        assert_eq!(diffs.len(), 1, "tune artifact missing: {diffs:?}");
        assert!(diffs[0].contains("--bless"));
        bless_tune(report, &dir).unwrap();
        assert!(check_tune(report, &dir).is_empty());
        // the blessed table is non-trivial: top-K rows, winner first
        let text = fs::read_to_string(dir.join("tune_star7_a100.json")).unwrap();
        assert!(text.contains("space_fingerprint"), "{text}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn temporal_bless_round_trips() {
        let sweep = crate::testutil::shared_temporal_sweep();
        let dir = std::env::temp_dir().join(format!("golden_temporal_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let diffs = check_temporal(sweep, &dir);
        assert_eq!(diffs.len(), 2, "both temporal artifacts missing: {diffs:?}");
        assert!(diffs[0].contains("--bless"));
        bless_temporal(sweep, &dir).unwrap();
        assert!(check_temporal(sweep, &dir).is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
