//! Table reproductions.

use serde::{Deserialize, Serialize};

use brick_dsl::shape::StencilShape;
use brick_dsl::StencilAnalysis;
use gpu_sim::{GpuKind, ProgModel};

use crate::config::KernelConfig;
use crate::runner::Sweep;

/// Table 1: programming models, modules and compilers per system — plus
/// this reproduction's simulated equivalent of each row.
pub fn table1() -> Vec<[String; 4]> {
    let rows = [
        (
            "Perlmutter (NERSC)",
            "CUDA",
            "NVHPC 22.7, CUDAToolkit 11.7, nvcc/11.7",
            "CompilerModel::resolve(A100, Cuda)",
        ),
        (
            "Perlmutter (NERSC)",
            "HIP",
            "hip/5.3.2 wrapper over nvcc/11.7",
            "CompilerModel::resolve(A100, Hip) — identical to CUDA",
        ),
        (
            "Perlmutter (NERSC)",
            "SYCL",
            "intel-llvm/2023-WW13, clang++/17.0.0",
            "CompilerModel::resolve(A100, Sycl)",
        ),
        (
            "Crusher (OLCF)",
            "HIP",
            "ROCm/5.2.0, AMD clang/14.0.0",
            "CompilerModel::resolve(MI250X, Hip)",
        ),
        (
            "Crusher (OLCF)",
            "SYCL",
            "dpcpp/22.09, clang++/16.0.0",
            "CompilerModel::resolve(MI250X, Sycl)",
        ),
        (
            "Florentia (JLSE)",
            "SYCL",
            "oneapi/eng-compiler 2022.12, icpx/2023.1.0",
            "CompilerModel::resolve(PVC, Sycl)",
        ),
    ];
    rows.iter()
        .map(|(s, m, c, sim)| [s.to_string(), m.to_string(), c.to_string(), sim.to_string()])
        .collect()
}

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Shape family name.
    pub shape: String,
    /// Stencil radius.
    pub radius: u32,
    /// Number of points.
    pub points: usize,
    /// Unique coefficients under symmetry.
    pub unique_coefficients: usize,
}

/// Table 2: the benchmark stencils.
pub fn table2() -> Vec<Table2Row> {
    StencilShape::paper_suite()
        .into_iter()
        .map(|s| Table2Row {
            shape: s.kind.to_string(),
            radius: s.radius,
            points: s.points(),
            unique_coefficients: s.unique_coefficients(),
        })
        .collect()
}

/// One row of Table 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4Row {
    /// Shape family name.
    pub shape: String,
    /// Number of points.
    pub points: usize,
    /// Theoretical arithmetic intensity in FLOP/Byte.
    pub theoretical_ai: f64,
}

/// Table 4: theoretical arithmetic intensity per stencil.
pub fn table4() -> Vec<Table4Row> {
    StencilShape::paper_suite()
        .into_iter()
        .map(|s| Table4Row {
            shape: s.kind.to_string(),
            points: s.points(),
            theoretical_ai: StencilAnalysis::of_shape(&s).theoretical_ai,
        })
        .collect()
}

/// A portability table (Table 3 or 5): per-stencil efficiencies on the
/// five platform columns, per-row P, and the overall P.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PortabilityTable {
    /// Which efficiency definition the table uses.
    pub efficiency: String,
    /// Platform column labels.
    pub columns: Vec<String>,
    /// `(stencil, efficiencies, P)` rows.
    pub rows: Vec<(String, Vec<f64>, f64)>,
    /// Mean of the per-row P values (the paper's bottom-line figure).
    pub overall_p: f64,
}

fn portability_table(
    sweep: &Sweep,
    efficiency: &str,
    pick: impl Fn(&crate::runner::Record) -> f64,
) -> PortabilityTable {
    let columns = ProgModel::portability_columns();
    let labels: Vec<String> = columns.iter().map(|(g, m)| format!("{g} {m}")).collect();
    let mut rows = Vec::new();
    for shape in StencilShape::paper_suite() {
        let label = shape.label();
        let effs: Vec<f64> = columns
            .iter()
            .map(|&(gpu, model)| {
                let r = sweep
                    .point(gpu, model, KernelConfig::BricksCodegen, &label)
                    .unwrap_or_else(|| panic!("sweep missing {gpu} {model} {label}"));
                pick(r)
            })
            .collect();
        let p = perf_portability::pennycook_p(&effs.iter().map(|e| Some(*e)).collect::<Vec<_>>());
        rows.push((label, effs, p));
    }
    let overall_p = rows.iter().map(|(_, _, p)| *p).sum::<f64>() / rows.len() as f64;
    PortabilityTable {
        efficiency: efficiency.to_string(),
        columns: labels,
        rows,
        overall_p,
    }
}

/// Table 3: performance portability of `bricks codegen` with efficiency =
/// fraction of the (empirical) Roofline.
pub fn table3(sweep: &Sweep) -> PortabilityTable {
    portability_table(sweep, "fraction of Roofline", |r| r.frac_roofline)
}

/// Table 5: performance portability of `bricks codegen` with efficiency =
/// fraction of theoretical arithmetic intensity.
pub fn table5(sweep: &Sweep) -> PortabilityTable {
    portability_table(sweep, "fraction of theoretical AI", |r| {
        r.frac_theoretical_ai
    })
}

/// The five platform columns of Tables 3/5, as `(GpuKind, ProgModel)`.
pub fn platform_columns() -> Vec<(GpuKind, ProgModel)> {
    ProgModel::portability_columns()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::shared_sweep;

    #[test]
    fn table1_covers_six_toolchains() {
        let t = table1();
        assert_eq!(t.len(), 6);
        assert!(t.iter().any(|r| r[2].contains("nvcc")));
        assert!(t.iter().any(|r| r[2].contains("ROCm")));
        assert!(t.iter().any(|r| r[2].contains("icpx")));
    }

    #[test]
    fn table2_matches_paper() {
        let t = table2();
        let expect = [
            ("star", 1, 7, 2),
            ("star", 2, 13, 3),
            ("star", 3, 19, 4),
            ("star", 4, 25, 5),
            ("cube", 1, 27, 4),
            ("cube", 2, 125, 10),
        ];
        for (row, (shape, radius, points, coeffs)) in t.iter().zip(expect) {
            assert_eq!(row.shape, shape);
            assert_eq!(row.radius, radius);
            assert_eq!(row.points, points);
            assert_eq!(row.unique_coefficients, coeffs);
        }
    }

    #[test]
    fn table4_matches_paper() {
        let t = table4();
        let ais: Vec<f64> = t.iter().map(|r| r.theoretical_ai).collect();
        assert_eq!(ais, [0.5, 0.9375, 1.375, 1.8125, 1.875, 8.375]);
    }

    #[test]
    fn table3_structure_and_bounds() {
        let t = table3(shared_sweep());
        assert_eq!(t.columns.len(), 5);
        assert_eq!(t.rows.len(), 6);
        for (stencil, effs, p) in &t.rows {
            assert_eq!(effs.len(), 5, "{stencil}");
            let min = effs.iter().cloned().fold(f64::MAX, f64::min);
            let max = effs.iter().cloned().fold(0.0f64, f64::max);
            assert!(*p >= min - 1e-12 && *p <= max + 1e-12, "{stencil}");
        }
        assert!(t.overall_p > 0.2, "P = {}", t.overall_p);
    }

    #[test]
    fn table5_fractions_bounded_by_one() {
        let t = table5(shared_sweep());
        for (stencil, effs, _) in &t.rows {
            for e in effs {
                assert!(*e > 0.0 && *e <= 1.001, "{stencil}: {e}");
            }
        }
    }
}
