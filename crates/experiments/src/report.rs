//! Rendering: text tables for the terminal and CSV/JSON artifacts on
//! disk.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::figures::{CorrelationFigure, Fig3Panel, Fig4Group};
use crate::runner::Sweep;
use crate::tables::{PortabilityTable, Table2Row, Table4Row};

/// Render a generic text table with a header row.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, (c, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{c:>w$}", w = w);
        }
        out.push('\n');
    };
    line(
        &mut out,
        &header.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    );
    let _ = writeln!(
        out,
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1))
    );
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Render Table 1.
pub fn render_table1(rows: &[[String; 4]]) -> String {
    render_table(
        &["system", "model", "paper toolchain", "simulated equivalent"],
        &rows.iter().map(|r| r.to_vec()).collect::<Vec<_>>(),
    )
}

/// Render Table 2.
pub fn render_table2(rows: &[Table2Row]) -> String {
    render_table(
        &["shape", "radius", "points", "unique coefficients"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.shape.clone(),
                    r.radius.to_string(),
                    r.points.to_string(),
                    r.unique_coefficients.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// Render Table 4.
pub fn render_table4(rows: &[Table4Row]) -> String {
    render_table(
        &["shape", "points", "theoretical AI (FLOP/Byte)"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.shape.clone(),
                    r.points.to_string(),
                    format!("{:.4}", r.theoretical_ai),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// Render a portability table (Table 3 or 5), with the consistency
/// statistics (min/max ratio and coefficient of variation) of the
/// related P3HPC literature appended per row.
pub fn render_portability(t: &PortabilityTable) -> String {
    let mut header: Vec<&str> = vec!["stencil"];
    header.extend(t.columns.iter().map(String::as_str));
    header.push("P");
    header.push("min/max");
    let mut rows = Vec::new();
    for (stencil, effs, p) in &t.rows {
        let cons = perf_portability::consistency(effs);
        let mut row = vec![stencil.clone()];
        row.extend(effs.iter().map(|e| format!("{:.0}%", e * 100.0)));
        row.push(format!("{:.0}%", p * 100.0));
        row.push(format!("{:.2}", cons.min_max_ratio));
        rows.push(row);
    }
    let mut out = format!("efficiency: {}\n", t.efficiency);
    out.push_str(&render_table(&header, &rows));
    let _ = writeln!(out, "overall P: {:.0}%", t.overall_p * 100.0);
    out
}

/// Render a Fig. 3 panel as a text table (AI/GFLOPs per point plus the
/// ceilings).
pub fn render_fig3(panels: &[Fig3Panel]) -> String {
    let mut out = String::new();
    for p in panels {
        let _ = writeln!(
            out,
            "--- {} / {} (empirical peak {:.0} GFLOP/s, bw {:.0} GB/s, ridge AI {:.2}) ---",
            p.gpu,
            p.model,
            p.roofline.peak_gflops,
            p.roofline.bandwidth_gbs,
            p.roofline.ridge_ai()
        );
        let rows: Vec<Vec<String>> = p
            .points
            .iter()
            .map(|(config, stencil, ai, gflops)| {
                vec![
                    stencil.clone(),
                    config.to_string(),
                    format!("{ai:.3}"),
                    format!("{gflops:.0}"),
                    format!("{:.0}%", 100.0 * gflops / p.roofline.attainable(*ai)),
                ]
            })
            .collect();
        out.push_str(&render_table(
            &["stencil", "config", "AI", "GFLOP/s", "% roofline"],
            &rows,
        ));
        out.push('\n');
    }
    out
}

/// Render Fig. 4 as text.
pub fn render_fig4(groups: &[Fig4Group]) -> String {
    let mut out = String::new();
    for g in groups {
        let _ = writeln!(out, "--- L1 data movement: {} / {} ---", g.gpu, g.model);
        let rows: Vec<Vec<String>> = g
            .bars
            .iter()
            .map(|(config, stencil, bytes)| {
                vec![
                    stencil.clone(),
                    config.to_string(),
                    format!("{:.3}", *bytes as f64 / 1e9),
                ]
            })
            .collect();
        out.push_str(&render_table(&["stencil", "config", "L1 GB"], &rows));
        out.push('\n');
    }
    out
}

/// Render a correlation figure (Fig. 5 / Fig. 6) as text.
pub fn render_correlation(f: &CorrelationFigure, title: &str) -> String {
    let mut out = format!(
        "--- {title}: {} vs {} on {} ---\n",
        f.y_model, f.x_model, f.gpu
    );
    let rows: Vec<Vec<String>> = f
        .perf_points
        .iter()
        .zip(&f.bytes_points)
        .map(|(p, b)| {
            vec![
                p.label.clone(),
                format!("{:.0}", p.y),
                format!("{:.0}", p.x),
                format!("{:.2}", b.y / 1e9),
                format!("{:.2}", b.x / 1e9),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &[
            "config",
            &format!("{} GFLOP/s", f.y_model),
            &format!("{} GFLOP/s", f.x_model),
            &format!("{} GB", f.y_model),
            &format!("{} GB", f.x_model),
        ],
        &rows,
    ));
    let _ = writeln!(
        out,
        "perf: {} wins {:.0}% of points, geomean ratio {:.2}x, log-pearson {:.3}",
        f.y_model,
        f.perf.frac_y_wins * 100.0,
        f.perf.geomean_ratio,
        f.perf.log_pearson
    );
    let _ = writeln!(
        out,
        "bytes: theoretical lower bound {:.2} GB, geomean ratio {:.2}x",
        f.bytes_lower_bound as f64 / 1e9,
        f.bytes.geomean_ratio
    );
    out
}

/// Write the full sweep as CSV (one row per record).
pub fn write_sweep_csv(sweep: &Sweep, path: &Path) -> io::Result<()> {
    let mut out = String::from(
        "stencil,config,gpu,model,gflops,ai,theoretical_ai,frac_roofline,\
         frac_theoretical_ai,l1_bytes,l2_bytes,dram_bytes,time_s,occupancy,\
         regs_per_thread,spilled,limiter\n",
    );
    for r in &sweep.records {
        let _ = writeln!(
            out,
            "{},{},{},{},{:.3},{:.5},{:.5},{:.5},{:.5},{},{},{},{:.6e},{:.4},{},{},{}",
            r.stencil,
            r.config.label().replace(' ', "-"),
            r.gpu,
            r.model,
            r.gflops,
            r.ai,
            r.theoretical_ai,
            r.frac_roofline,
            r.frac_theoretical_ai,
            r.l1_bytes,
            r.l2_bytes,
            r.dram_bytes,
            r.time_s,
            r.occupancy,
            r.regs_per_thread,
            r.spilled,
            r.limiter,
        );
    }
    fs::write(path, out)
}

/// Render the temporal sweep's A100/CUDA panel as an aligned table:
/// one row per (stencil, fusion degree), the AN5D scaling columns.
pub fn render_temporal(sweep: &crate::temporal::TemporalSweep) -> String {
    use gpu_sim::{GpuKind, ProgModel};
    let rows: Vec<Vec<String>> = sweep
        .records
        .iter()
        .filter(|r| r.gpu == GpuKind::A100 && r.model == ProgModel::Cuda)
        .map(|r| {
            vec![
                r.stencil.clone(),
                format!("{}", r.temporal_degree),
                format!("{:.3}", r.ai),
                format!("{:.2}", r.dram_bytes_per_point),
                format!("{:.0}", r.gflops),
                format!("{}", r.regs_per_thread),
                if r.spilled { "yes".into() } else { "no".into() },
                r.limiter.clone(),
            ]
        })
        .collect();
    render_table(
        &[
            "stencil",
            "T",
            "AI",
            "DRAM B/pt-step",
            "GFLOP/s",
            "regs",
            "spill",
            "limiter",
        ],
        &rows,
    )
}

/// Write the full temporal sweep as CSV (one row per record).
pub fn write_temporal_csv(sweep: &crate::temporal::TemporalSweep, path: &Path) -> io::Result<()> {
    let mut out = String::from(
        "stencil,temporal_degree,gpu,model,gflops,ai,dram_bytes,dram_bytes_per_point,\
         l1_bytes,l2_bytes,time_s,occupancy,regs_per_thread,spilled,limiter\n",
    );
    for r in &sweep.records {
        let _ = writeln!(
            out,
            "{},{},{},{},{:.3},{:.5},{},{:.5},{},{},{:.6e},{:.4},{},{},{}",
            r.stencil,
            r.temporal_degree,
            r.gpu,
            r.model,
            r.gflops,
            r.ai,
            r.dram_bytes,
            r.dram_bytes_per_point,
            r.l1_bytes,
            r.l2_bytes,
            r.time_s,
            r.occupancy,
            r.regs_per_thread,
            r.spilled,
            r.limiter,
        );
    }
    fs::write(path, out)
}

/// Write any serialisable artifact as JSON.
pub fn write_json<T: serde::Serialize>(value: &T, path: &Path) -> io::Result<()> {
    let s = serde_json::to_string_pretty(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    fs::write(path, s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables;

    #[test]
    fn generic_table_alignment() {
        let t = render_table(
            &["a", "bb"],
            &[
                vec!["1".into(), "2".into()],
                vec!["10".into(), "200".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[3].contains("10  200"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = render_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn static_tables_render() {
        assert!(render_table1(&tables::table1()).contains("Perlmutter"));
        assert!(render_table2(&tables::table2()).contains("125"));
        assert!(render_table4(&tables::table4()).contains("8.3750"));
    }

    #[test]
    fn csv_roundtrip_to_disk() {
        let sweep = crate::testutil::shared_sweep();
        let dir = std::env::temp_dir().join("bricks_repro_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.csv");
        write_sweep_csv(sweep, &path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content.lines().count(), 1 + sweep.records.len());
        assert!(content.starts_with("stencil,config"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn portability_rendering() {
        let t = tables::table3(crate::testutil::shared_sweep());
        let s = render_portability(&t);
        assert!(s.contains("overall P:"));
        assert!(s.contains("7pt"));
    }
}
