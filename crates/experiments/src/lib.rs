//! # experiments
//!
//! The experiment harness: regenerates every table and figure of
//! *"Performance Portability Evaluation of Blocked Stencil Computations
//! on GPUs"* from the simulated pipeline (DSL → codegen → VM trace →
//! GPU simulation → metrics).
//!
//! One driver per artifact (see DESIGN.md §4):
//!
//! | paper artifact | function |
//! |---|---|
//! | Table 1 (systems/compilers) | [`tables::table1`] |
//! | Table 2 (stencil inventory) | [`tables::table2`] |
//! | Table 3 (P, fraction of Roofline) | [`tables::table3`] |
//! | Table 4 (theoretical AI) | [`tables::table4`] |
//! | Table 5 (P, fraction of theoretical AI) | [`tables::table5`] |
//! | Fig. 1/2 (DSL + kernels) | [`figures::fig1_fig2_listings`] |
//! | Fig. 3 (Rooflines) | [`figures::fig3`] |
//! | Fig. 4 (L1 data movement) | [`figures::fig4`] |
//! | Fig. 5 (CUDA vs SYCL on A100) | [`figures::fig5`] |
//! | Fig. 6 (HIP vs SYCL on MI250X) | [`figures::fig6`] |
//! | Fig. 7 (potential speed-up) | [`figures::fig7`] |
//!
//! The `experiments` binary drives them (`cargo run -p experiments
//! --release -- --all`).

pub mod bench_exec;
pub mod bench_sim;
pub mod cache;
pub mod config;
pub mod figures;
pub mod golden;
pub mod paper;
pub mod plot;
pub mod report;
pub mod runner;
pub mod tables;
pub mod temporal;
pub mod tune;

pub use brick_sweep::Jobs;
pub use config::{ExperimentParams, KernelConfig};
pub use runner::{sweep, sweep_with, CellFilter, Record, Sweep, SweepError, SweepOptions};
pub use temporal::{temporal_sweep, temporal_sweep_with, TemporalRecord, TemporalSweep};
pub use tune::{run_bench_tune, run_tune, tune_options, tuned_vs_paper, SpaceChoice, TuneBench};

#[cfg(test)]
pub(crate) mod testutil {
    //! One shared 128³ sweep for the whole test suite — the sweep is the
    //! expensive part, the assertions are cheap.
    use crate::config::ExperimentParams;
    use crate::runner::{sweep, Sweep};
    use crate::temporal::{temporal_sweep, TemporalSweep};
    use std::sync::OnceLock;

    static SWEEP: OnceLock<Sweep> = OnceLock::new();
    static TEMPORAL: OnceLock<TemporalSweep> = OnceLock::new();
    static TUNE: OnceLock<brick_tuner::TuneReport> = OnceLock::new();

    pub fn shared_sweep() -> &'static Sweep {
        SWEEP.get_or_init(|| sweep(ExperimentParams { n: 128 }))
    }

    /// One shared 64³ temporal sweep (the golden size — big enough that
    /// every fused footprint still exercises all cache levels).
    pub fn shared_temporal_sweep() -> &'static TemporalSweep {
        TEMPORAL.get_or_init(|| temporal_sweep(ExperimentParams { n: 64 }))
    }

    /// One shared golden-configuration tune report (7pt × A100/CUDA ×
    /// smoke space at the golden size).
    pub fn shared_tune_report() -> &'static brick_tuner::TuneReport {
        TUNE.get_or_init(|| {
            brick_tuner::tune_matrix(&crate::tune::golden_tune_options(None, None))
                .expect("golden tune configuration runs")
        })
    }
}
