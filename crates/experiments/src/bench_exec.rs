//! Machine-readable native-backend throughput: `BENCH_exec.json`.
//!
//! One measurement, re-run by CI on every PR: the 7-point star (`star1`)
//! at the paper's 512³, bricks layout, executed numerically on the host
//! CPU under the interpreter and under the backend [`ExecutionMode`]
//! dispatch selects — the acceptance cell behind the native execution
//! backend (`brick_vm::native`). Best-of-N wall times, the relative
//! spread across repetitions (the gate's noise figure), and the full run
//! provenance (including the dispatched mode) are recorded.
//!
//! [`run_bench_exec`] fails (so CI fails) when a real SIMD backend was
//! dispatched at full scale and the speedup over the interpreter fell
//! below [`MIN_NATIVE_SPEEDUP`] — the compiled backend must never
//! regress into interpreter-class throughput.

use std::fs;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use brick_codegen::{generate, CodegenOptions, LayoutKind};
use brick_core::{BrickDims, BrickGrid};
use brick_dsl::shape::StencilShape;
use brick_dsl::DenseGrid;
use brick_vm::{resolve_with, run_vector_brick_backend, Backend, CpuFeatures, ExecutionMode};

/// Domain size of the acceptance cell: the paper's full scale.
pub const BENCH_EXEC_N: usize = 512;

/// Vector width / brick x-extent of the measured kernel (matches the
/// `kernel_throughput` and `exec_throughput` criterion benches).
pub const BENCH_EXEC_WIDTH: usize = 32;

/// Floor on `native.points_per_s / interpreter.points_per_s` when a real
/// SIMD backend (AVX2/NEON) was dispatched at full scale. Not enforced
/// for the portable fallback (no SIMD to credit) or at reduced `--n`
/// (cache effects change the ratio).
///
/// The floor is set from measurement, not aspiration: on the reference
/// single-core AVX2 host the compiled backend sustains 3.5–4.1× the
/// interpreter at 512³ (≈230 vs ≈60 Mpts/s). A 10× bar is not reachable
/// there even in principle — the L1-resident kernel micro-benchmark
/// (`eval_block_micro`, no DRAM traffic at all) peaks near 570 Mpts/s,
/// while 10× of the measured interpreter is ≈600 Mpts/s *including* the
/// sweep's full memory traffic; the cell is DRAM-bound on one core (see
/// `DESIGN.md` §12 for the roofline argument). 2.5 sits below the
/// measured band by a noise margin and still catches any regression of
/// the compiled path toward interpreter-class throughput.
pub const MIN_NATIVE_SPEEDUP: f64 = 2.5;

/// Wall time and throughput of one backend over the measured cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecMeasurement {
    /// Backend that executed (`"interpreter"`, `"portable"`, `"avx2"`,
    /// `"neon"`).
    pub backend: String,
    /// Best-of-N wall seconds for one full sweep of the grid.
    pub wall_s: f64,
    /// Points per second at the best-of-N wall time.
    pub points_per_s: f64,
    /// Relative spread (`max/min - 1`) of the repetitions' wall times.
    pub spread: f64,
}

/// Descriptor of the measured cell (the document's `"exec"` key is also
/// how `bricks prof` recognizes a `BENCH_exec.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecCell {
    /// Stencil label (`"7pt"` = star-1).
    pub stencil: String,
    /// Grid layout the kernel addresses.
    pub layout: String,
    /// Domain size (points per axis).
    pub n: usize,
    /// Vector width of the generated kernel.
    pub width: usize,
    /// CPU features detected on the measuring host.
    pub cpu_features: String,
    /// Execution mode the native series was requested under.
    pub mode: String,
    /// Backend that mode dispatched to on this host.
    pub backend: String,
}

/// The complete `BENCH_exec.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchExec {
    /// Document schema (bumped with the measurement's meaning).
    pub schema: u64,
    /// What was measured, where.
    pub exec: ExecCell,
    /// Interpreter (oracle) series.
    pub interpreter: ExecMeasurement,
    /// Native series under the dispatched backend.
    pub native: ExecMeasurement,
    /// `native.points_per_s / interpreter.points_per_s`.
    pub speedup: f64,
    /// Relative spread of the per-repetition speedups (paired by index).
    pub speedup_spread: f64,
    /// The floor `speedup` was gated against (0 when no SIMD backend
    /// dispatched or the run was at reduced scale).
    pub min_speedup: f64,
    /// Provenance: git SHA, exec mode, per-repetition wall times.
    pub manifest: brick_obs::RunManifest,
}

/// `BENCH_exec.json` schema version.
pub const EXEC_SCHEMA_VERSION: u64 = 1;

fn min_of(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

fn spread_of(samples: &[f64]) -> f64 {
    let min = min_of(samples);
    let max = samples.iter().copied().fold(0.0f64, f64::max);
    if min > 0.0 {
        max / min - 1.0
    } else {
        0.0
    }
}

/// Measure the cell at size `n` under `mode` and, when `out_dir` is
/// given, write `BENCH_exec.json` there.
///
/// Fails when `mode` cannot be dispatched on this host, or when the
/// dispatched backend is SIMD, `n == BENCH_EXEC_N`, and the measured
/// speedup is below [`MIN_NATIVE_SPEEDUP`].
pub fn run_bench_exec(
    n: usize,
    mode: ExecutionMode,
    out_dir: Option<&Path>,
) -> Result<BenchExec, String> {
    let features = CpuFeatures::detect();
    let backend = resolve_with(mode, features)?;
    let shape = StencilShape::star(1);
    let st = shape.stencil();
    let b = st.default_bindings();
    let kernel = generate(
        &st,
        &b,
        LayoutKind::Brick,
        BENCH_EXEC_WIDTH,
        CodegenOptions::default(),
    )
    .map_err(|e| format!("codegen: {e}"))?;
    let config_json = format!(
        r#"{{"bench":"exec","stencil":"{}","n":{n},"width":{}}}"#,
        shape.label(),
        BENCH_EXEC_WIDTH
    );
    let manifest = brick_obs::RunManifest::begin(&config_json).with_exec_mode(&mode.to_string());

    let mut dense = DenseGrid::cubic(n, st.radius() as usize);
    dense.fill_test_pattern();
    let input = BrickGrid::from_dense(&dense, BrickDims::for_simd_width(BENCH_EXEC_WIDTH));
    let mut output = BrickGrid::with_metadata(Arc::clone(input.decomp()), Arc::clone(input.info()));
    drop(dense);

    // Best-of-N per series: full-scale sweeps are seconds each, so three
    // repetitions bound the cost while the min discards scheduler noise;
    // smaller sizes are cheap enough for five.
    let reps: usize = if n >= BENCH_EXEC_N { 3 } else { 5 };
    let t_run = Instant::now();
    let mut measure = |series: Backend| -> Result<(ExecMeasurement, Vec<f64>), String> {
        let mut walls = Vec::with_capacity(reps);
        for _ in 0..reps {
            let t = Instant::now();
            run_vector_brick_backend(&kernel, &input, &mut output, series)
                .map_err(|e| format!("{series}: {e}"))?;
            walls.push(t.elapsed().as_secs_f64());
        }
        let wall_s = min_of(&walls);
        Ok((
            ExecMeasurement {
                backend: series.to_string(),
                wall_s,
                points_per_s: (n * n * n) as f64 / wall_s.max(1e-9),
                spread: spread_of(&walls),
            },
            walls,
        ))
    };
    let (interpreter, interp_walls) = measure(Backend::Interpreter)?;
    let (native, native_walls) = measure(backend)?;

    let rep_speedups: Vec<f64> = interp_walls
        .iter()
        .zip(&native_walls)
        .map(|(i, nv)| i / nv.max(1e-9))
        .collect();
    let speedup = interpreter.wall_s / native.wall_s.max(1e-9);
    let simd = matches!(backend, Backend::Avx2 | Backend::Neon);
    let min_speedup = if simd && n >= BENCH_EXEC_N {
        MIN_NATIVE_SPEEDUP
    } else {
        0.0
    };
    let all_walls: Vec<f64> = interp_walls.iter().chain(&native_walls).copied().collect();
    let bench = BenchExec {
        schema: EXEC_SCHEMA_VERSION,
        exec: ExecCell {
            stencil: shape.label(),
            layout: LayoutKind::Brick.to_string(),
            n,
            width: BENCH_EXEC_WIDTH,
            cpu_features: features.to_string(),
            mode: mode.to_string(),
            backend: backend.to_string(),
        },
        interpreter,
        native,
        speedup,
        speedup_spread: spread_of(&rep_speedups),
        min_speedup,
        manifest: manifest.finish(t_run.elapsed().as_secs_f64(), all_walls),
    };
    if let Some(dir) = out_dir {
        let path = dir.join("BENCH_exec.json");
        let json = serde_json::to_string_pretty(&bench).map_err(|e| e.to_string())?;
        fs::write(&path, json).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    if bench.speedup < min_speedup {
        return Err(format!(
            "native backend ({}) is only {:.2}x the interpreter at {n}^3 — the {:.1}x \
             acceptance floor failed",
            bench.exec.backend, bench.speedup, min_speedup
        ));
    }
    Ok(bench)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_cell_measures_and_serializes() {
        // 32³ keeps this cheap in debug; the speedup floor only arms at
        // full scale with a SIMD backend, so this asserts structure and
        // sanity, not the acceptance bar.
        let b = run_bench_exec(32, ExecutionMode::Auto, None).expect("bench runs");
        assert_eq!(b.exec.stencil, "7pt");
        assert_eq!(b.exec.n, 32);
        assert_eq!(b.min_speedup, 0.0);
        assert!(b.interpreter.wall_s > 0.0 && b.native.wall_s > 0.0);
        assert!(b.speedup > 0.0);
        assert_eq!(b.manifest.exec_mode.as_deref(), Some("auto"));
        let json = serde_json::to_string(&b).unwrap();
        let back: BenchExec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.exec.backend, b.exec.backend);
        assert_eq!(back.schema, EXEC_SCHEMA_VERSION);
    }

    #[test]
    fn scalar_mode_pits_the_interpreter_against_itself() {
        let b = run_bench_exec(32, ExecutionMode::Scalar, None).expect("bench runs");
        assert_eq!(b.exec.backend, "interpreter");
        assert_eq!(b.min_speedup, 0.0);
    }
}
