//! Autotuning driver: the paper's missing experiment.
//!
//! The study measures every platform at one fixed configuration (32-lane
//! rows, 4×4 transverse block, gather, lexicographic ordering) and
//! attributes the remaining 2–4× of Fig. 7's potential-speed-up plot to
//! brick-size tuning (§5.2.2). This driver runs that search: the full
//! [`brick_tuner::TuningSpace`] over every paper stencil and `(GPU,
//! model)` pair, producing a ranked table per group and the
//! tuned-vs-paper comparison (`EXPERIMENTS.md`).
//!
//! `--bench-tune` additionally measures the incremental machinery itself:
//! a cold sweep into a fresh cache followed by a warm rerun, gated at
//! [`WARM_FRAC_MAX`] (`BENCH_tune.json`).

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use brick_tuner::{tune_matrix, TuneOptions, TuneReport, TuningSpace};
use gpu_sim::{GpuKind, ProgModel};

/// Default domain extent for tuning runs. The ranked tables and golden
/// artifact are pinned here (the golden size of the rest of the suite);
/// `--n` overrides for scaling studies.
pub const TUNE_N: usize = crate::golden::GOLDEN_N;

/// Warm-over-cold wall-time ceiling for the bench gate: a warm rerun of
/// an unchanged sweep must cost less than this fraction of the cold run.
pub const WARM_FRAC_MAX: f64 = 0.10;

/// Named sub-spaces selectable from the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpaceChoice {
    /// The full default space (thousands of candidates per target).
    Full,
    /// The ~200-valid-cell smoke space (CI).
    Smoke,
    /// The two-candidate minimal space.
    Minimal,
}

impl SpaceChoice {
    /// Materialize the space.
    pub fn space(self) -> TuningSpace {
        match self {
            SpaceChoice::Full => TuningSpace::default(),
            SpaceChoice::Smoke => TuningSpace::smoke(),
            SpaceChoice::Minimal => TuningSpace::minimal(),
        }
    }

    /// Parse a CLI value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "full" => Ok(SpaceChoice::Full),
            "smoke" => Ok(SpaceChoice::Smoke),
            "minimal" => Ok(SpaceChoice::Minimal),
            other => Err(format!(
                "unknown tuning space `{other}` (full|smoke|minimal)"
            )),
        }
    }
}

impl std::fmt::Display for SpaceChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SpaceChoice::Full => "full",
            SpaceChoice::Smoke => "smoke",
            SpaceChoice::Minimal => "minimal",
        })
    }
}

/// Assemble the tuner request the way the sweep drivers assemble
/// [`crate::SweepOptions`]: same jobs plumbing, same cache layout
/// (`<out>/simcache` — the tuner's `tune` domain keeps its entries apart
/// from the sweep's `cell`/`tcell` files).
pub fn tune_options(
    n: usize,
    jobs: Option<usize>,
    cache_dir: Option<PathBuf>,
    space: TuningSpace,
) -> TuneOptions {
    let mut opts = TuneOptions::new(n).space(space);
    if let Some(j) = jobs {
        opts = opts.jobs(j);
    }
    opts.cache_dir = cache_dir;
    opts
}

/// Run the full tuning matrix. Errors are already rendered.
pub fn run_tune(opts: &TuneOptions) -> Result<TuneReport, String> {
    tune_matrix(opts).map_err(|e| e.to_string())
}

/// The exact tune the golden artifact is blessed from and checked
/// against: the 7-point star on A100/CUDA over the smoke space at
/// [`GOLDEN_N`][crate::golden::GOLDEN_N]. Bless and check must build the
/// request identically or the fingerprints in the artifact drift.
pub fn golden_tune_options(jobs: Option<usize>, cache_dir: Option<PathBuf>) -> TuneOptions {
    tune_options(TUNE_N, jobs, cache_dir, TuningSpace::smoke())
        .shapes(vec![brick_dsl::shape::StencilShape::star(1)])
        .targets(vec![brick_tuner::TuneTarget {
            arch: gpu_sim::GpuArch::a100(),
            model: ProgModel::Cuda,
        }])
        .top_k(crate::golden::TUNE_GOLDEN_TOP_K)
}

/// One row of the tuned-vs-paper comparison table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuneCompareRow {
    /// Stencil label.
    pub stencil: String,
    /// GPU.
    pub gpu: GpuKind,
    /// Programming model.
    pub model: ProgModel,
    /// The paper's fixed configuration, GFLOP/s.
    pub paper_gflops: f64,
    /// The tuner's winner, GFLOP/s.
    pub tuned_gflops: f64,
    /// `tuned / paper` (≥ 1 by construction).
    pub gain: f64,
    /// Canonical description of the winning specialization vector.
    pub best_params: String,
    /// Whether the winner is exactly the paper configuration.
    pub paper_optimal: bool,
}

/// The tuned-vs-paper table, one row per group in report order.
pub fn tuned_vs_paper(report: &TuneReport) -> Vec<TuneCompareRow> {
    report
        .groups
        .iter()
        .map(|g| {
            let best = g.best();
            TuneCompareRow {
                stencil: g.stencil.clone(),
                gpu: g.gpu,
                model: g.model,
                paper_gflops: g.baseline.gflops,
                tuned_gflops: best.gflops,
                gain: g.gain_over_paper(),
                best_params: best.params.desc(),
                paper_optimal: best.fingerprint == g.baseline.fingerprint,
            }
        })
        .collect()
}

/// Render the comparison as a fixed-width text table.
pub fn render_tuned_vs_paper(rows: &[TuneCompareRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8} {:<12} {:<6} {:>10} {:>10} {:>7}  best",
        "stencil", "gpu", "model", "paper", "tuned", "gain"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<8} {:<12} {:<6} {:>10.1} {:>10.1} {:>6.2}x  {}",
            r.stencil,
            r.gpu.to_string(),
            r.model.to_string(),
            r.paper_gflops,
            r.tuned_gflops,
            r.gain,
            if r.paper_optimal {
                "(paper config)".to_string()
            } else {
                r.best_params.clone()
            }
        );
    }
    out
}

/// `BENCH_tune.json`: the tuner benchmark and its gates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuneBench {
    /// Domain extent.
    pub n: usize,
    /// Space the benchmark searched.
    pub space: String,
    /// [`TuningSpace::fingerprint`] of that space.
    pub space_fingerprint: u64,
    /// Valid cells measured in the cold run (across all groups).
    pub cells: u64,
    /// Cells dropped by the Roofline upper bound.
    pub pruned: u64,
    /// Cells rejected by validity predicates.
    pub skipped: u64,
    /// Cold sweep wall time (fresh cache), seconds.
    pub cold_wall_s: f64,
    /// Warm rerun wall time (unchanged inputs), seconds.
    pub warm_wall_s: f64,
    /// `warm / cold` — gated at [`WARM_FRAC_MAX`].
    pub warm_frac: f64,
    /// Warm-run cache hits (must equal the cold run's cell count).
    pub warm_hits: u64,
    /// The tuned-vs-paper table from the warm run.
    pub compare: Vec<TuneCompareRow>,
    /// Provenance of the warm run.
    pub manifest: brick_obs::RunManifest,
}

/// Run the tuner benchmark at `n³` over `choice` and write
/// `BENCH_tune.json` under `out`.
///
/// Gates (an `Err` means a gate failed — callers should exit non-zero):
/// the warm rerun must cost under [`WARM_FRAC_MAX`] of the cold run, the
/// warm run must serve every cell from cache (zero misses), and the two
/// ranked tables must be byte-identical.
pub fn run_bench_tune(
    n: usize,
    jobs: Option<usize>,
    out: &Path,
    choice: SpaceChoice,
) -> Result<TuneBench, String> {
    let space = choice.space();
    // a dedicated scratch cache: the cold half of the benchmark must
    // never be served by a previous run's entries
    let cache_dir = out.join("tunecache-bench");
    let _ = std::fs::remove_dir_all(&cache_dir);
    let opts = tune_options(n, jobs, Some(cache_dir.clone()), space.clone());

    let t0 = Instant::now();
    let cold = run_tune(&opts)?;
    let cold_wall_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let warm = run_tune(&opts)?;
    let warm_wall_s = t1.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&cache_dir);

    let mut gate_failures = Vec::new();
    let warm_frac = warm_wall_s / cold_wall_s.max(1e-12);
    if warm_frac >= WARM_FRAC_MAX {
        gate_failures.push(format!(
            "warm rerun at {:.1}% of cold ({warm_wall_s:.2}s / {cold_wall_s:.2}s), gate < {:.0}%",
            warm_frac * 100.0,
            WARM_FRAC_MAX * 100.0
        ));
    }
    if warm.manifest.cache_misses > 0 {
        gate_failures.push(format!(
            "warm run recomputed {} cells (expected all {} from cache)",
            warm.manifest.cache_misses, warm.manifest.tune_valid_cells
        ));
    }
    let cold_groups = serde_json::to_string(&cold.groups).map_err(|e| e.to_string())?;
    let warm_groups = serde_json::to_string(&warm.groups).map_err(|e| e.to_string())?;
    if cold_groups != warm_groups {
        gate_failures.push("warm ranked tables differ from cold".to_string());
    }

    let bench = TuneBench {
        n,
        space: choice.to_string(),
        space_fingerprint: space.fingerprint(),
        cells: cold.manifest.tune_valid_cells,
        pruned: cold.manifest.tune_pruned_cells,
        skipped: cold.manifest.tune_skipped_cells,
        cold_wall_s,
        warm_wall_s,
        warm_frac,
        warm_hits: warm.manifest.cache_hits,
        compare: tuned_vs_paper(&warm),
        manifest: warm.manifest.clone(),
    };
    let path = out.join("BENCH_tune.json");
    let json = serde_json::to_string_pretty(&bench).map_err(|e| e.to_string())?;
    std::fs::write(&path, json).map_err(|e| format!("write {}: {e}", path.display()))?;

    if gate_failures.is_empty() {
        Ok(bench)
    } else {
        Err(gate_failures.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brick_tuner::TuneTarget;
    use gpu_sim::GpuArch;

    #[test]
    fn compare_rows_anchor_on_the_baseline() {
        let opts = TuneOptions::new(64)
            .shapes(vec![brick_dsl::shape::StencilShape::star(1)])
            .targets(vec![TuneTarget {
                arch: GpuArch::a100(),
                model: ProgModel::Cuda,
            }])
            .space(TuningSpace::minimal())
            .jobs(2);
        let report = tune_matrix(&opts).unwrap();
        let rows = tuned_vs_paper(&report);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.gain >= 1.0, "winner at least matches paper: {r:?}");
        assert!((r.gain - r.tuned_gflops / r.paper_gflops).abs() < 1e-12);
        if r.paper_optimal {
            assert_eq!(r.best_params, report.groups[0].baseline.params.desc());
        }
        let text = render_tuned_vs_paper(&rows);
        assert!(text.contains("7pt"), "{text}");
    }

    #[test]
    fn space_choice_parses() {
        assert_eq!(SpaceChoice::parse("full").unwrap(), SpaceChoice::Full);
        assert_eq!(SpaceChoice::parse("smoke").unwrap(), SpaceChoice::Smoke);
        assert_eq!(SpaceChoice::parse("minimal").unwrap(), SpaceChoice::Minimal);
        assert!(SpaceChoice::parse("everything").is_err());
        assert_eq!(SpaceChoice::Smoke.to_string(), "smoke");
    }
}
