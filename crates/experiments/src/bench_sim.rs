//! Machine-readable simulator performance trajectory: `BENCH_sim.json`.
//!
//! Two measurements, re-run by CI on every PR so the simulator's speed is
//! tracked as data rather than anecdote:
//!
//! * **sweep throughput** — a full 64³ matrix sweep, cold (empty result
//!   cache) and warm (second run over the same cache), in cells/second;
//! * **fidelity speedup** — the star-2 CUDA/A100 bricks-codegen cell
//!   simulated under [`SimFidelity::Exact`] and [`SimFidelity::Fast`],
//!   with the wall-time ratio and a hard check that both produce
//!   identical [`gpu_sim::MemCounters`].
//!
//! [`run_bench_sim`] fails (so CI fails) if the fast path is slower than
//! the exact oracle — the memoization must never regress into a pessimum.

use std::fs;
use std::path::Path;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use brick_dsl::shape::StencilShape;
use gpu_sim::{
    compile_only, simulate_memory_opts, GpuArch, GpuKind, ProgModel, SimFidelity, SimOptions,
};

use crate::cache::SIM_SCHEMA_VERSION;
use crate::config::{ExperimentParams, KernelConfig};
use crate::runner::{build_geometry, build_spec, sweep_with, SweepOptions};

/// Wall-clock throughput of a full matrix sweep, cold vs warm cache.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepThroughput {
    /// Domain size the sweep ran at.
    pub n: usize,
    /// Number of records the sweep produced.
    pub cells: usize,
    /// Wall seconds with an empty result cache.
    pub cold_wall_s: f64,
    /// Wall seconds re-running over the populated cache.
    pub warm_wall_s: f64,
    /// Cells per second, cold.
    pub cold_cells_per_s: f64,
    /// Cells per second, warm.
    pub warm_cells_per_s: f64,
    /// Relative spread (`max/min - 1`) of the cold repetitions' wall
    /// times — the run's own measurement noise, which `bricks prof
    /// diff` widens its tolerance by.
    pub cold_spread: f64,
    /// Relative spread of the warm repetitions' wall times.
    pub warm_spread: f64,
}

/// Exact-vs-fast wall time of one representative cell's memory
/// simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FidelityComparison {
    /// Stencil label (`"13pt"` = star-2).
    pub stencil: String,
    /// Kernel configuration label.
    pub config: String,
    /// GPU simulated.
    pub gpu: String,
    /// Programming model.
    pub model: String,
    /// Domain size.
    pub n: usize,
    /// Memory-simulation wall seconds under `Exact` fidelity.
    pub exact_wall_s: f64,
    /// Memory-simulation wall seconds under `Fast` fidelity.
    pub fast_wall_s: f64,
    /// `exact_wall_s / fast_wall_s`.
    pub speedup: f64,
    /// Relative spread (`max/min - 1`) of the per-repetition speedups —
    /// the run's own measurement noise, which `bricks prof diff` widens
    /// its tolerance by.
    pub speedup_spread: f64,
    /// Whether the two fidelities produced bit-identical counters
    /// (always true, or the run fails).
    pub counters_identical: bool,
}

/// The complete `BENCH_sim.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchSim {
    /// Simulation schema the numbers were produced under.
    pub schema: u64,
    /// Sweep throughput block.
    pub sweep: SweepThroughput,
    /// Fidelity speedup block at the CI size.
    pub fidelity: FidelityComparison,
    /// Fidelity speedup block at the paper's full 512³ — the scale where
    /// the wave-periodic fast-forward engages (`None` when the base run
    /// already is 512³).
    pub fidelity_full: Option<FidelityComparison>,
    /// Provenance of the cold throughput sweep: git SHA, fidelity, jobs,
    /// cache outcome — what `bricks prof history` keys its timeline on.
    pub manifest: brick_obs::RunManifest,
}

/// Domain size of the throughput sweep (the golden size: small enough
/// for CI, large enough to exercise every cell).
pub const BENCH_SWEEP_N: usize = 64;

/// Default domain size of the fidelity comparison; `--full` raises it to
/// the paper's 512³.
pub const BENCH_FIDELITY_N: usize = 128;

/// The paper-scale fidelity comparison always recorded alongside the CI
/// size: 512³ is where whole waves repeat and the fast path's periodic
/// fast-forward pays off.
pub const BENCH_FIDELITY_FULL_N: usize = 512;

fn measure_sweep(
    jobs: Option<usize>,
    scratch: &Path,
) -> Result<(SweepThroughput, brick_obs::RunManifest), String> {
    let cache_dir = scratch.join("bench-simcache");
    let _ = fs::remove_dir_all(&cache_dir);
    let opts = |cache: bool| {
        let mut o = SweepOptions::new(ExperimentParams { n: BENCH_SWEEP_N });
        if let Some(j) = jobs {
            o = o.jobs(j);
        }
        if cache {
            o = o.cache_dir(&cache_dir);
        }
        o
    };
    // Best-of-N for both phases, for the same reason as
    // `measure_fidelity`: single-shot wall times are noisier than the
    // regression gate's 10% floor tolerance. Each cold repetition
    // starts from a cleared cache; the warm repetitions reuse the last
    // cold run's. The spread across repetitions is recorded alongside
    // the min so `bricks prof diff` can judge a delta against this
    // run's actual noise.
    const COLD_REPS: usize = 3;
    let mut cold_walls = Vec::with_capacity(COLD_REPS);
    let mut cold = None;
    for _ in 0..COLD_REPS {
        let _ = fs::remove_dir_all(&cache_dir);
        let t0 = Instant::now();
        let s = sweep_with(&opts(true)).map_err(|e| format!("cold bench sweep: {e}"))?;
        cold_walls.push(t0.elapsed().as_secs_f64());
        cold = Some(s);
    }
    let cold = cold.expect("COLD_REPS > 0");
    // A warm sweep is tens of milliseconds of cache reads, so its
    // relative jitter is the largest of any gated metric; ten cheap
    // repetitions pull the min close to the floor.
    const WARM_REPS: usize = 10;
    let mut warm_walls = Vec::with_capacity(WARM_REPS);
    let mut warm = None;
    for _ in 0..WARM_REPS {
        let t1 = Instant::now();
        let s = sweep_with(&opts(true)).map_err(|e| format!("warm bench sweep: {e}"))?;
        warm_walls.push(t1.elapsed().as_secs_f64());
        warm = Some(s);
    }
    let warm = warm.expect("WARM_REPS > 0");
    let _ = fs::remove_dir_all(&cache_dir);
    let cold_wall_s = min_of(&cold_walls);
    let warm_wall_s = min_of(&warm_walls);
    if cold.records.len() != warm.records.len() {
        return Err("cold and warm sweeps disagree on cell count".to_string());
    }
    let cells = cold.records.len();
    let throughput = SweepThroughput {
        n: BENCH_SWEEP_N,
        cells,
        cold_wall_s,
        warm_wall_s,
        cold_cells_per_s: cells as f64 / cold_wall_s.max(1e-9),
        warm_cells_per_s: cells as f64 / warm_wall_s.max(1e-9),
        cold_spread: spread_of(&cold_walls),
        warm_spread: spread_of(&warm_walls),
    };
    Ok((throughput, cold.manifest))
}

fn min_of(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Relative spread `max/min - 1` of a set of positive samples — the
/// noise figure `BENCH_sim.json` records next to each gated metric.
fn spread_of(samples: &[f64]) -> f64 {
    let min = min_of(samples);
    let max = samples.iter().copied().fold(0.0f64, f64::max);
    if min > 0.0 {
        max / min - 1.0
    } else {
        0.0
    }
}

fn measure_fidelity(n: usize) -> Result<FidelityComparison, String> {
    let shape = StencilShape::star(2);
    let config = KernelConfig::BricksCodegen;
    let arch = GpuArch::by_kind(GpuKind::A100);
    let model = ProgModel::Cuda;
    let spec = build_spec(&shape, config, arch.simd_width);
    let geom = build_geometry(config.layout(), n, arch.simd_width, shape.radius as usize);
    let (_, _, occ) = compile_only(&spec, arch, model)
        .ok_or_else(|| "no compiler model for CUDA on A100".to_string())?;

    // Minimum over repetitions: wall-clock noise on a single run is well
    // above the gate's 10% tolerance, and min is the robust estimator
    // for "how fast can this code go". The CI size is cheap enough to
    // repeat five times; paper scale gets three.
    let reps: usize = if n <= BENCH_FIDELITY_N { 5 } else { 3 };
    let run = |fidelity: SimFidelity| {
        let opts = SimOptions {
            fidelity,
            ..SimOptions::default()
        };
        let mut walls = Vec::with_capacity(reps);
        let mut counters = None;
        for _ in 0..reps {
            let t = Instant::now();
            let c = simulate_memory_opts(&spec, &geom, arch, occ.blocks_per_sm, &opts).counters();
            walls.push(t.elapsed().as_secs_f64());
            counters = Some(c);
        }
        (walls, counters.expect("reps > 0"))
    };
    let (exact_walls, exact) = run(SimFidelity::Exact);
    let (fast_walls, fast) = run(SimFidelity::Fast);
    let exact_wall_s = min_of(&exact_walls);
    let fast_wall_s = min_of(&fast_walls);
    // per-repetition speedups (paired by index) give this run's own
    // noise figure for the gated ratio
    let rep_speedups: Vec<f64> = exact_walls
        .iter()
        .zip(&fast_walls)
        .map(|(e, f)| e / f.max(1e-9))
        .collect();
    let counters_identical = exact == fast;
    if !counters_identical {
        return Err(format!(
            "fidelity violation at n={n}: exact {exact:?} != fast {fast:?}"
        ));
    }
    Ok(FidelityComparison {
        stencil: shape.label(),
        config: config.label().to_string(),
        gpu: arch.kind.to_string(),
        model: model.to_string(),
        n,
        exact_wall_s,
        fast_wall_s,
        speedup: exact_wall_s / fast_wall_s.max(1e-9),
        speedup_spread: spread_of(&rep_speedups),
        counters_identical,
    })
}

/// Run both measurements and write `BENCH_sim.json` under `out_dir`.
///
/// Fails if the fast path is slower than the exact path (speedup < 1) or
/// if the counters diverge — either would mean the memoization broke.
pub fn run_bench_sim(
    fidelity_n: usize,
    jobs: Option<usize>,
    out_dir: &Path,
) -> Result<BenchSim, String> {
    let (sweep, manifest) = measure_sweep(jobs, out_dir)?;
    let fidelity = measure_fidelity(fidelity_n)?;
    let fidelity_full = if fidelity_n == BENCH_FIDELITY_FULL_N {
        None
    } else {
        Some(measure_fidelity(BENCH_FIDELITY_FULL_N)?)
    };
    let bench = BenchSim {
        schema: SIM_SCHEMA_VERSION,
        sweep,
        fidelity,
        fidelity_full,
        manifest,
    };
    let path = out_dir.join("BENCH_sim.json");
    let json = serde_json::to_string_pretty(&bench).map_err(|e| e.to_string())?;
    fs::write(&path, json).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    for f in std::iter::once(&bench.fidelity).chain(bench.fidelity_full.as_ref()) {
        if f.speedup < 1.0 {
            return Err(format!(
                "fast fidelity is SLOWER than exact at n={} ({:.2}x) — see {}",
                f.n,
                f.speedup,
                path.display()
            ));
        }
    }
    Ok(bench)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fidelity_comparison_is_identical_and_measured() {
        // small n keeps this cheap in debug; the asserted contract is the
        // same one CI gates on at 128³ in release
        let f = measure_fidelity(64).expect("comparison runs");
        assert!(f.counters_identical);
        assert!(f.exact_wall_s > 0.0 && f.fast_wall_s > 0.0);
        assert_eq!(f.stencil, "13pt");
        assert_eq!(f.gpu, "A100");
    }

    #[test]
    fn bench_document_serializes_round_trip() {
        let bench = BenchSim {
            schema: SIM_SCHEMA_VERSION,
            sweep: SweepThroughput {
                n: 64,
                cells: 108,
                cold_wall_s: 10.0,
                warm_wall_s: 1.0,
                cold_cells_per_s: 10.8,
                warm_cells_per_s: 108.0,
                cold_spread: 0.05,
                warm_spread: 0.2,
            },
            fidelity: FidelityComparison {
                stencil: "13pt".into(),
                config: "bricks codegen".into(),
                gpu: "a100".into(),
                model: "cuda".into(),
                n: 128,
                exact_wall_s: 8.0,
                fast_wall_s: 1.0,
                speedup: 8.0,
                speedup_spread: 0.1,
                counters_identical: true,
            },
            fidelity_full: None,
            manifest: brick_obs::RunManifest::default(),
        };
        let json = serde_json::to_string(&bench).unwrap();
        let back: BenchSim = serde_json::from_str(&json).unwrap();
        assert_eq!(back.fidelity.speedup, 8.0);
        assert_eq!(back.schema, SIM_SCHEMA_VERSION);
    }
}
