//! The sweep runner: every (stencil × kernel config × GPU × programming
//! model) point of the study, flattened into independent cells, fanned
//! out across worker threads ([`brick_sweep::map_cells`]) and made
//! incremental across runs by a content-addressed on-disk result cache
//! (see [`crate::cache`]).
//!
//! Determinism contract: for a fixed configuration, [`sweep_with`]
//! produces byte-identical serialized records at **any** jobs count and
//! whether cells were computed or loaded from a warm cache. The parallel
//! reduction preserves cell order, every cell is a pure function of its
//! inputs, and shared memoisations (verification, geometry, memory
//! counters) only deduplicate work — never change values. The golden and
//! determinism suites under `crates/experiments/tests/` enforce this.

use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};

use serde::{Deserialize, Serialize};

use brick_codegen::{generate, CodegenOptions, LayoutKind};
use brick_core::{BrickDecomp, BrickDims, BrickNav, BrickOrdering};
use brick_dsl::shape::StencilShape;
use brick_dsl::StencilAnalysis;
use brick_sweep::{map_cells, CacheOutcome, DiskCache, Jobs};
use brick_vm::{KernelSpec, ScalarKernel, TraceGeometry};
use gpu_sim::{
    assemble, compile_only, simulate_memory_opts, CompilerModel, GpuArch, GpuKind, MemCounters,
    ProgModel, SimFidelity, SimOptions,
};
use roofline::{measure, Roofline};

use crate::cache::{cell_key, roofline_key};
use crate::config::{ExperimentParams, KernelConfig};

/// One measured point of the study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Record {
    /// Stencil shape.
    pub shape: StencilShape,
    /// Paper label (`"7pt"` … `"125pt"`).
    pub stencil: String,
    /// Kernel configuration.
    pub config: KernelConfig,
    /// GPU.
    pub gpu: GpuKind,
    /// Programming model.
    pub model: ProgModel,
    /// GFLOP/s at the normalised FLOP count.
    pub gflops: f64,
    /// Empirical arithmetic intensity (FLOP/Byte at DRAM).
    pub ai: f64,
    /// Theoretical arithmetic intensity (Table 4).
    pub theoretical_ai: f64,
    /// Fraction of the empirical Roofline at the empirical AI.
    pub frac_roofline: f64,
    /// Fraction of theoretical AI.
    pub frac_theoretical_ai: f64,
    /// L1 data movement in bytes (Fig. 4 metric).
    pub l1_bytes: u64,
    /// L2 data movement in bytes.
    pub l2_bytes: u64,
    /// HBM data movement in bytes (Figs. 5/6 "Bytes accessed").
    pub dram_bytes: u64,
    /// Kernel time in seconds.
    pub time_s: f64,
    /// Occupancy fraction.
    pub occupancy: f64,
    /// Registers per thread.
    pub regs_per_thread: u32,
    /// Whether the compiler spilled.
    pub spilled: bool,
    /// Limiting resource.
    pub limiter: String,
}

/// A complete sweep: all records plus the per-platform empirical
/// Rooflines they were scored against, and the provenance manifest of
/// the run that produced them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sweep {
    /// Parameters the sweep ran with.
    pub params: ExperimentParams,
    /// All measured points.
    pub records: Vec<Record>,
    /// Empirical Roofline per platform.
    pub rooflines: Vec<((GpuKind, ProgModel), Roofline)>,
    /// Provenance: git SHA, config hash, wall times, obs summary.
    pub manifest: brick_obs::RunManifest,
}

impl Sweep {
    /// Records matching a filter, in sweep order.
    pub fn select(
        &self,
        gpu: Option<GpuKind>,
        model: Option<ProgModel>,
        config: Option<KernelConfig>,
    ) -> Vec<&Record> {
        self.records
            .iter()
            .filter(|r| gpu.is_none_or(|g| r.gpu == g))
            .filter(|r| model.is_none_or(|m| r.model == m))
            .filter(|r| config.is_none_or(|c| r.config == c))
            .collect()
    }

    /// The unique record for an exact point.
    pub fn point(
        &self,
        gpu: GpuKind,
        model: ProgModel,
        config: KernelConfig,
        stencil: &str,
    ) -> Option<&Record> {
        self.records.iter().find(|r| {
            r.gpu == gpu && r.model == model && r.config == config && r.stencil == stencil
        })
    }

    /// Roofline for a platform.
    pub fn roofline(&self, gpu: GpuKind, model: ProgModel) -> Option<&Roofline> {
        self.rooflines
            .iter()
            .find(|((g, m), _)| *g == gpu && *m == model)
            .map(|(_, r)| r)
    }
}

/// Statically verify a spec's vector kernel before it is simulated,
/// memoised by kernel fingerprint (thread-safe, shareable across parallel
/// cells — see [`brick_lint::FingerprintCache`]) so the (GPU, model)
/// matrix pays for each distinct program once. Scalar kernels have no IR
/// to verify and pass through. Panics with the rendered report if the
/// generator emitted a kernel the analyzer rejects — simulating an
/// unverified kernel would silently produce wrong paper numbers.
pub fn verify_spec(
    spec: &KernelSpec,
    shape: &StencilShape,
    arch: &GpuArch,
    cache: &brick_lint::FingerprintCache,
) {
    let KernelSpec::Vector(k) = spec else { return };
    let fp = brick_lint::fingerprint(k);
    if cache.check_or_insert(fp) {
        brick_obs::counter_add("sweep.lint_cache_hits", 1);
        return;
    }
    let _span = brick_obs::span_cat(format!("lint:sweep:{}", k.name), "lint");
    let st = shape.stencil();
    let b = st.default_bindings();
    let opts = brick_lint::LintOptions {
        expected: Some(
            brick_lint::ExpectedStencil::resolve(&st, &b).expect("paper bindings resolve"),
        ),
        budgets: vec![arch.lint_budget()],
    };
    let analysis = brick_lint::analyze(k, &opts);
    assert!(
        analysis.is_clean(),
        "generated kernel failed static verification:\n{}",
        analysis.report.render(Some(k))
    );
    brick_obs::counter_add("sweep.lint_verified", 1);
}

/// Build the kernel spec for a configuration at a SIMD width.
pub fn build_spec(shape: &StencilShape, config: KernelConfig, width: usize) -> KernelSpec {
    let st = shape.stencil();
    let b = st.default_bindings();
    if config.codegen() {
        KernelSpec::Vector(
            generate(&st, &b, config.layout(), width, CodegenOptions::default())
                .expect("paper stencils are within codegen limits"),
        )
    } else {
        KernelSpec::Scalar(
            ScalarKernel::new(&st, &b, config.layout(), width)
                .expect("default bindings cover all symbols"),
        )
    }
}

/// Build the trace geometry for a layout at a domain size.
pub fn build_geometry(layout: LayoutKind, n: usize, width: usize, radius: usize) -> TraceGeometry {
    let dims = BrickDims::for_simd_width(width);
    match layout {
        LayoutKind::Brick => {
            let decomp = Arc::new(BrickDecomp::new(
                (n, n, n),
                dims,
                radius,
                BrickOrdering::Lexicographic,
            ));
            TraceGeometry::brick(Arc::new(BrickNav::new(decomp)))
        }
        LayoutKind::Array => TraceGeometry::array((n, n, n), radius, dims),
    }
}

/// A structured sweep failure (the runner no longer panics on matrix
/// holes — an unsupported pair or a missing ceiling comes back as data).
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// The experiment parameters failed validation.
    InvalidParams(String),
    /// A supported `(gpu, model)` cell had no measured Roofline to score
    /// against.
    MissingRoofline {
        /// GPU of the offending cell.
        gpu: GpuKind,
        /// Programming model of the offending cell.
        model: ProgModel,
    },
    /// The on-disk result cache could not be opened.
    Cache(String),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::InvalidParams(msg) => write!(f, "invalid experiment parameters: {msg}"),
            SweepError::MissingRoofline { gpu, model } => {
                write!(f, "no empirical Roofline for supported pair {gpu}/{model}")
            }
            SweepError::Cache(msg) => write!(f, "result cache unavailable: {msg}"),
        }
    }
}

impl std::error::Error for SweepError {}

/// A sub-matrix selection: `None` per axis means "everything". Used by
/// the determinism suite (random sub-matrices must stay deterministic)
/// and handy for focused reruns; figure/table drivers assume the full
/// matrix and are not filter-aware.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CellFilter {
    /// Keep only these stencil labels (`"7pt"` … `"125pt"`).
    pub stencils: Option<Vec<String>>,
    /// Keep only these GPUs.
    pub gpus: Option<Vec<GpuKind>>,
    /// Keep only these programming models.
    pub models: Option<Vec<ProgModel>>,
    /// Keep only these kernel configurations.
    pub configs: Option<Vec<KernelConfig>>,
}

impl CellFilter {
    /// Does `cell` survive the filter?
    fn keeps(&self, cell: &Cell) -> bool {
        self.stencils
            .as_ref()
            .is_none_or(|s| s.contains(&cell.stencil))
            && self.gpus.as_ref().is_none_or(|g| g.contains(&cell.gpu))
            && self.models.as_ref().is_none_or(|m| m.contains(&cell.model))
            && self
                .configs
                .as_ref()
                .is_none_or(|c| c.contains(&cell.config))
    }
}

/// How to run a sweep: the study parameters plus scheduling and caching
/// choices (which, by the determinism contract, never affect results —
/// only wall time).
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Study parameters (domain size).
    pub params: ExperimentParams,
    /// Worker threads for the cell fan-out.
    pub jobs: Jobs,
    /// Result-cache directory; `None` disables on-disk caching.
    pub cache_dir: Option<PathBuf>,
    /// Sub-matrix to run (default: the full paper matrix).
    pub filter: CellFilter,
    /// Simulation fidelity (default `Fast`; bit-identical to `Exact` by
    /// the differential contract, and part of every cell's cache key).
    pub fidelity: SimFidelity,
}

impl SweepOptions {
    /// Defaults: full matrix, no disk cache, jobs from `BRICK_JOBS` or
    /// all hardware threads, fast fidelity.
    pub fn new(params: ExperimentParams) -> SweepOptions {
        SweepOptions {
            params,
            jobs: Jobs::from_flag_or_env(None),
            cache_dir: None,
            filter: CellFilter::default(),
            fidelity: SimFidelity::default(),
        }
    }

    /// Use exactly `n` worker threads.
    pub fn jobs(mut self, n: usize) -> SweepOptions {
        self.jobs = Jobs::N(n);
        self
    }

    /// Cache results under `dir`.
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> SweepOptions {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Restrict to a sub-matrix.
    pub fn filter(mut self, filter: CellFilter) -> SweepOptions {
        self.filter = filter;
        self
    }

    /// Simulate with the given fidelity.
    pub fn fidelity(mut self, fidelity: SimFidelity) -> SweepOptions {
        self.fidelity = fidelity;
        self
    }
}

/// One independent unit of sweep work: a `(stencil, config, GPU, model)`
/// matrix point plus the per-stencil scoring constants, carried by value
/// so evaluating the cell touches no shared mutable state.
#[derive(Debug, Clone)]
struct Cell {
    shape: StencilShape,
    stencil: String,
    gpu: GpuKind,
    model: ProgModel,
    config: KernelConfig,
    flops_per_point: u64,
    theoretical_ai: f64,
}

/// Flatten the (filtered) study matrix into cells, in the canonical
/// order records are reported in: stencil → architecture → `(gpu,
/// model)` pair → configuration.
fn flatten_cells(filter: &CellFilter) -> Vec<Cell> {
    let matrix = ProgModel::paper_matrix();
    let mut cells = Vec::new();
    for shape in StencilShape::paper_suite() {
        let analysis = StencilAnalysis::of_shape(&shape);
        for arch in GpuArch::table() {
            for &(gpu, model) in &matrix {
                if gpu != arch.kind {
                    continue;
                }
                for config in KernelConfig::all() {
                    let cell = Cell {
                        shape,
                        stencil: shape.label(),
                        gpu,
                        model,
                        config,
                        flops_per_point: analysis.flops_per_point,
                        theoretical_ai: analysis.theoretical_ai,
                    };
                    if filter.keeps(&cell) {
                        cells.push(cell);
                    }
                }
            }
        }
    }
    cells
}

/// Measure (or reuse) the empirical Roofline of every supported matrix
/// pair, in matrix order.
///
/// Ceilings are memoised per *platform*: pairs whose resolved compiler
/// model coincides (HIP on A100 is the CUDA wrapper) share one mixbench
/// sweep instead of re-measuring, and with a warm disk cache the
/// measurement is loaded instead of run.
pub(crate) fn measure_rooflines(
    cache: Option<&DiskCache>,
) -> Vec<((GpuKind, ProgModel), Roofline)> {
    let _s = brick_obs::span_cat("rooflines", "phase");
    let mut memo: HashMap<String, Option<Roofline>> = HashMap::new();
    let mut rooflines = Vec::new();
    for (gpu, model) in ProgModel::paper_matrix() {
        let arch = GpuArch::by_kind(gpu);
        // platform identity: the architecture plus the *resolved* compiler
        // model, so wrapper models dedupe onto their host toolchain
        let platform = match CompilerModel::resolve(gpu, model) {
            Some(cm) => format!(
                "{gpu}/{}",
                serde_json::to_string(&cm).expect("compiler model serializes")
            ),
            None => continue, // unsupported pair: no ceiling, no cell
        };
        let measured = memo.entry(platform).or_insert_with(|| match cache {
            Some(c) => c.get_or_compute(&roofline_key(arch, model), || measure(arch, model)),
            None => measure(arch, model),
        });
        if let Some(r) = measured {
            rooflines.push(((gpu, model), *r));
        }
    }
    brick_obs::gauge_set("sweep.rooflines", rooflines.len() as f64);
    rooflines
}

/// Run the full study matrix — 6 stencils × 3 configurations × the
/// paper's 6 (GPU, model) pairs — in parallel, loading unchanged cells
/// from the result cache when one is configured.
///
/// Memory simulations are shared between programming models whose trace
/// and resident-wave shape coincide (CUDA and its HIP wrapper always do),
/// so the matrix costs 3 GPUs' worth of traces, not 6; the sharing memo
/// is race-free (`OnceLock` per key) and value-deterministic, so the
/// schedule cannot influence results.
pub fn sweep_with(opts: &SweepOptions) -> Result<Sweep, SweepError> {
    opts.params.validate().map_err(SweepError::InvalidParams)?;
    let sweep_start = std::time::Instant::now();
    let manifest = brick_obs::RunManifest::begin(
        &serde_json::to_string(&opts.params).expect("params serialize"),
    );
    let _span = brick_obs::span_cat(format!("sweep:{}^3", opts.params.n), "sweep");
    let n = opts.params.n;
    // counters are process-global; deltas isolate this sweep's cache story
    let cache_counters = || {
        (
            brick_obs::counter_value("sweep.cache.hits"),
            brick_obs::counter_value("sweep.cache.misses"),
            brick_obs::counter_value("sweep.cache.corrupt"),
        )
    };
    let cache_before = cache_counters();

    let cache = match &opts.cache_dir {
        Some(dir) => Some(DiskCache::open(dir).map_err(|e| SweepError::Cache(e.to_string()))?),
        None => None,
    };

    let rooflines = measure_rooflines(cache.as_ref());
    brick_obs::info!("measured {} rooflines, sweeping at n={n}", rooflines.len());

    let cells = flatten_cells(&opts.filter);

    // Phase 1 — build and statically verify each distinct kernel program
    // once (distinct = (stencil, SIMD width, config); the (gpu, model)
    // axis shares programs). Verification is memoised by the analyzer's
    // content fingerprint.
    let lint_memo = brick_lint::FingerprintCache::new();
    let mut spec_jobs: Vec<(StencilShape, usize, KernelConfig)> = Vec::new();
    for cell in &cells {
        let width = GpuArch::by_kind(cell.gpu).simd_width;
        if !spec_jobs
            .iter()
            .any(|(s, w, c)| s.label() == cell.stencil && *w == width && *c == cell.config)
        {
            spec_jobs.push((cell.shape, width, cell.config));
        }
    }
    let specs: HashMap<(String, usize, KernelConfig), KernelSpec> = map_cells(
        "sweep.specs",
        &spec_jobs,
        opts.jobs,
        |_, &(shape, width, config)| {
            let _phase = brick_obs::span_cat("lint-verify", "phase");
            let spec = build_spec(&shape, config, width);
            let arch = GpuArch::table()
                .iter()
                .find(|a| a.simd_width == width)
                .expect("width comes from the table");
            verify_spec(&spec, &shape, arch, &lint_memo);
            ((shape.label(), width, config), spec)
        },
    )
    .into_iter()
    .collect();

    // Phase 2 — evaluate cells. Shared, value-deterministic memos:
    // geometries by (layout, width, radius) and memory counters by
    // (gpu, stencil, config, blocks_per_sm). `OnceLock` guarantees one
    // computation per key even under races, and cache hits skip both.
    type GeomKey = (LayoutKind, usize, usize);
    type MemKey = (GpuKind, String, KernelConfig, u32, SimFidelity);
    let geom_memo: Mutex<HashMap<GeomKey, Arc<OnceLock<TraceGeometry>>>> =
        Mutex::new(HashMap::new());
    let mem_memo: Mutex<HashMap<MemKey, Arc<OnceLock<MemCounters>>>> = Mutex::new(HashMap::new());
    fn memo_slot<K: std::hash::Hash + Eq, V>(
        map: &Mutex<HashMap<K, Arc<OnceLock<V>>>>,
        key: K,
    ) -> Arc<OnceLock<V>> {
        Arc::clone(
            map.lock()
                .expect("memo lock poisoned")
                .entry(key)
                .or_default(),
        )
    }

    let outcomes = map_cells("sweep.cells", &cells, opts.jobs, |_, cell: &Cell| {
        let t0 = std::time::Instant::now();
        let _rec_span = brick_obs::span_cat(
            format!(
                "{}/{}/{}/{}",
                cell.stencil, cell.config, cell.gpu, cell.model
            ),
            "record",
        );
        let arch = GpuArch::by_kind(cell.gpu);
        let width = arch.simd_width;
        let spec = &specs[&(cell.stencil.clone(), width, cell.config)];
        let compiled = {
            let _phase = brick_obs::span_cat("compile", "phase");
            compile_only(spec, arch, cell.model)
        };
        let Some((cm, compiled, occ)) = compiled else {
            return Ok(None); // unsupported pair: a hole, not an error
        };
        let Some(rl) = rooflines
            .iter()
            .find(|((g, m), _)| *g == cell.gpu && *m == cell.model)
            .map(|(_, r)| *r)
        else {
            return Err(SweepError::MissingRoofline {
                gpu: cell.gpu,
                model: cell.model,
            });
        };

        let key = cache.as_ref().map(|_| {
            cell_key(
                spec,
                arch,
                cell.model,
                n,
                cell.flops_per_point,
                cell.theoretical_ai,
                &rl,
                opts.fidelity,
                1, // the base matrix is unfused; see crate::temporal
                // the base sweep always runs the paper's fixed
                // specialization for the target's lane width
                &brick_codegen::SpecParams::paper_default(width),
            )
        });
        if let (Some(c), Some(key)) = (cache.as_ref(), key.as_ref()) {
            let _phase = brick_obs::span_cat("cache-io", "phase");
            if let CacheOutcome::Hit(record) = c.get::<Record>(key) {
                return Ok(Some((record, t0.elapsed().as_secs_f64())));
            }
        }

        let radius = cell.shape.radius as usize;
        let geom_slot = memo_slot(&geom_memo, (cell.config.layout(), width, radius));
        let mem_slot = memo_slot(
            &mem_memo,
            (
                cell.gpu,
                cell.stencil.clone(),
                cell.config,
                occ.blocks_per_sm,
                opts.fidelity,
            ),
        );
        let (geom, mem) = {
            let _phase = brick_obs::span_cat("simulate", "phase");
            let geom =
                geom_slot.get_or_init(|| build_geometry(cell.config.layout(), n, width, radius));
            let mem = *mem_slot.get_or_init(|| {
                let sim_opts = SimOptions {
                    fidelity: opts.fidelity,
                    ..SimOptions::default()
                };
                simulate_memory_opts(spec, geom, arch, occ.blocks_per_sm, &sim_opts).counters()
            });
            (geom, mem)
        };
        let score = brick_obs::span_cat("score", "phase");
        let sim = assemble(spec, geom, arch, &cm, &compiled, mem, cell.flops_per_point);
        let record = Record {
            shape: cell.shape,
            stencil: cell.stencil.clone(),
            config: cell.config,
            gpu: cell.gpu,
            model: cell.model,
            gflops: sim.gflops,
            ai: sim.ai,
            theoretical_ai: cell.theoretical_ai,
            frac_roofline: rl.fraction(sim.gflops, sim.ai),
            frac_theoretical_ai: sim.ai / cell.theoretical_ai,
            l1_bytes: sim.mem.l1_bytes,
            l2_bytes: sim.mem.l2_bytes,
            dram_bytes: sim.mem.dram_bytes,
            time_s: sim.time_s,
            occupancy: sim.occupancy.occupancy,
            regs_per_thread: sim.regs_per_thread,
            spilled: sim.spilled,
            limiter: sim.breakdown.limiter().to_string(),
        };
        drop(score); // phases never nest: close scoring before cache-io
        if let (Some(c), Some(key)) = (cache.as_ref(), key.as_ref()) {
            let _phase = brick_obs::span_cat("cache-io", "phase");
            if let Err(e) = c.put(key, &record) {
                brick_obs::warn!("could not cache {}: {e}", key.file_name());
            }
        }
        Ok(Some((record, t0.elapsed().as_secs_f64())))
    });

    // Deterministic reduction: cell order in, record order out.
    let mut records = Vec::new();
    let mut record_wall_s = Vec::new();
    for outcome in outcomes {
        if let Some((record, wall)) = outcome? {
            records.push(record);
            record_wall_s.push(wall);
        }
    }

    let cache_after = cache_counters();
    let manifest = manifest
        .finish(sweep_start.elapsed().as_secs_f64(), record_wall_s)
        .with_sweep_info(
            &opts.fidelity.to_string(),
            opts.jobs.count() as u64,
            (
                cache_after.0 - cache_before.0,
                cache_after.1 - cache_before.1,
                cache_after.2 - cache_before.2,
            ),
        );
    Ok(Sweep {
        params: opts.params,
        records,
        rooflines,
        manifest,
    })
}

/// Run the full study matrix with default scheduling (all hardware
/// threads or `BRICK_JOBS`) and no disk cache. Panics on invalid
/// parameters — the historical convenience entry point; use
/// [`sweep_with`] for structured errors, caching and jobs control.
pub fn sweep(params: ExperimentParams) -> Sweep {
    sweep_with(&SweepOptions::new(params)).expect("sweep failed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::shared_sweep;

    fn test_sweep() -> &'static Sweep {
        shared_sweep()
    }

    #[test]
    fn sweep_covers_the_full_matrix() {
        let s = test_sweep();
        // 6 stencils × 3 configs × 6 (gpu, model) pairs
        assert_eq!(s.records.len(), 6 * 3 * 6);
        assert_eq!(s.rooflines.len(), 6);
        for &(gpu, model) in &ProgModel::paper_matrix() {
            let recs = s.select(Some(gpu), Some(model), None);
            assert_eq!(recs.len(), 18, "{gpu} {model}");
        }
    }

    #[test]
    fn hip_wrapper_matches_cuda_in_sweep() {
        let s = test_sweep();
        for config in KernelConfig::all() {
            for stencil in ["7pt", "125pt"] {
                let c = s
                    .point(GpuKind::A100, ProgModel::Cuda, config, stencil)
                    .unwrap();
                let h = s
                    .point(GpuKind::A100, ProgModel::Hip, config, stencil)
                    .unwrap();
                assert_eq!(c.dram_bytes, h.dram_bytes);
                assert!((c.gflops - h.gflops).abs() / c.gflops < 1e-9);
            }
        }
    }

    #[test]
    fn bricks_codegen_wins_on_every_platform() {
        let s = test_sweep();
        for &(gpu, model) in &ProgModel::paper_matrix() {
            for stencil in ["7pt", "13pt", "27pt", "125pt"] {
                let bricks = s
                    .point(gpu, model, KernelConfig::BricksCodegen, stencil)
                    .unwrap();
                let array = s.point(gpu, model, KernelConfig::Array, stencil).unwrap();
                // At the 128³ test size the MI250X domain is only two
                // 64-wide bricks across (half the brick shell is ghost),
                // which costs the brick layout up to ~20% here; on the
                // other GPUs the shell is small. Full-scale ordering is
                // checked by the 256³/512³ benchmark runs.
                let tolerance = if gpu == GpuKind::Mi250xGcd { 0.8 } else { 0.95 };
                assert!(
                    bricks.gflops >= array.gflops * tolerance,
                    "{gpu} {model} {stencil}: bricks {:.0} < array {:.0}",
                    bricks.gflops,
                    array.gflops
                );
            }
        }
    }

    #[test]
    fn verify_spec_caches_by_fingerprint() {
        let shape = StencilShape::star(1);
        let arch = GpuArch::a100();
        let spec = build_spec(&shape, KernelConfig::BricksCodegen, arch.simd_width);
        let cache = brick_lint::FingerprintCache::new();
        verify_spec(&spec, &shape, &arch, &cache);
        assert_eq!(cache.len(), 1, "vector kernel verified and cached");
        verify_spec(&spec, &shape, &arch, &cache);
        assert_eq!(cache.len(), 1, "second verification hits the cache");
        // scalar kernels have no IR and don't populate the cache
        let scalar = build_spec(&shape, KernelConfig::Array, arch.simd_width);
        verify_spec(&scalar, &shape, &arch, &cache);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn fractions_are_sane() {
        let s = test_sweep();
        for r in &s.records {
            assert!(r.frac_roofline > 0.0 && r.frac_roofline <= 1.2, "{r:?}");
            assert!(
                r.frac_theoretical_ai > 0.0 && r.frac_theoretical_ai <= 1.001,
                "{r:?}"
            );
            assert!(r.l1_bytes >= r.dram_bytes, "{r:?}");
        }
    }
}
