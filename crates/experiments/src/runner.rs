//! The sweep runner: every (stencil × kernel config × GPU × programming
//! model) point of the study, with kernel/geometry/trace caching.

use std::collections::HashMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use brick_codegen::{generate, CodegenOptions, LayoutKind};
use brick_core::{BrickDecomp, BrickDims, BrickNav, BrickOrdering};
use brick_dsl::shape::StencilShape;
use brick_dsl::StencilAnalysis;
use brick_vm::{KernelSpec, ScalarKernel, TraceGeometry};
use gpu_sim::{assemble, compile_only, simulate_memory, GpuArch, GpuKind, MemCounters, ProgModel};
use roofline::{measure, Roofline};

use crate::config::{ExperimentParams, KernelConfig};

/// One measured point of the study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Record {
    /// Stencil shape.
    pub shape: StencilShape,
    /// Paper label (`"7pt"` … `"125pt"`).
    pub stencil: String,
    /// Kernel configuration.
    pub config: KernelConfig,
    /// GPU.
    pub gpu: GpuKind,
    /// Programming model.
    pub model: ProgModel,
    /// GFLOP/s at the normalised FLOP count.
    pub gflops: f64,
    /// Empirical arithmetic intensity (FLOP/Byte at DRAM).
    pub ai: f64,
    /// Theoretical arithmetic intensity (Table 4).
    pub theoretical_ai: f64,
    /// Fraction of the empirical Roofline at the empirical AI.
    pub frac_roofline: f64,
    /// Fraction of theoretical AI.
    pub frac_theoretical_ai: f64,
    /// L1 data movement in bytes (Fig. 4 metric).
    pub l1_bytes: u64,
    /// L2 data movement in bytes.
    pub l2_bytes: u64,
    /// HBM data movement in bytes (Figs. 5/6 "Bytes accessed").
    pub dram_bytes: u64,
    /// Kernel time in seconds.
    pub time_s: f64,
    /// Occupancy fraction.
    pub occupancy: f64,
    /// Registers per thread.
    pub regs_per_thread: u32,
    /// Whether the compiler spilled.
    pub spilled: bool,
    /// Limiting resource.
    pub limiter: String,
}

/// A complete sweep: all records plus the per-platform empirical
/// Rooflines they were scored against, and the provenance manifest of
/// the run that produced them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sweep {
    /// Parameters the sweep ran with.
    pub params: ExperimentParams,
    /// All measured points.
    pub records: Vec<Record>,
    /// Empirical Roofline per platform.
    pub rooflines: Vec<((GpuKind, ProgModel), Roofline)>,
    /// Provenance: git SHA, config hash, wall times, obs summary.
    pub manifest: brick_obs::RunManifest,
}

impl Sweep {
    /// Records matching a filter, in sweep order.
    pub fn select(
        &self,
        gpu: Option<GpuKind>,
        model: Option<ProgModel>,
        config: Option<KernelConfig>,
    ) -> Vec<&Record> {
        self.records
            .iter()
            .filter(|r| gpu.is_none_or(|g| r.gpu == g))
            .filter(|r| model.is_none_or(|m| r.model == m))
            .filter(|r| config.is_none_or(|c| r.config == c))
            .collect()
    }

    /// The unique record for an exact point.
    pub fn point(
        &self,
        gpu: GpuKind,
        model: ProgModel,
        config: KernelConfig,
        stencil: &str,
    ) -> Option<&Record> {
        self.records.iter().find(|r| {
            r.gpu == gpu && r.model == model && r.config == config && r.stencil == stencil
        })
    }

    /// Roofline for a platform.
    pub fn roofline(&self, gpu: GpuKind, model: ProgModel) -> Option<&Roofline> {
        self.rooflines
            .iter()
            .find(|((g, m), _)| *g == gpu && *m == model)
            .map(|(_, r)| r)
    }
}

/// Statically verify a spec's vector kernel before it is simulated,
/// memoised by kernel fingerprint so the (GPU, model) matrix pays for each
/// distinct program once. Scalar kernels have no IR to verify and pass
/// through. Panics with the rendered report if the generator emitted a
/// kernel the analyzer rejects — simulating an unverified kernel would
/// silently produce wrong paper numbers.
pub fn verify_spec(
    spec: &KernelSpec,
    shape: &StencilShape,
    arch: &GpuArch,
    cache: &mut HashMap<u64, ()>,
) {
    let KernelSpec::Vector(k) = spec else { return };
    let fp = brick_lint::fingerprint(k);
    if cache.contains_key(&fp) {
        brick_obs::counter_add("sweep.lint_cache_hits", 1);
        return;
    }
    let _span = brick_obs::span_cat(format!("lint:sweep:{}", k.name), "lint");
    let st = shape.stencil();
    let b = st.default_bindings();
    let opts = brick_lint::LintOptions {
        expected: Some(
            brick_lint::ExpectedStencil::resolve(&st, &b).expect("paper bindings resolve"),
        ),
        budgets: vec![arch.lint_budget()],
    };
    let analysis = brick_lint::analyze(k, &opts);
    assert!(
        analysis.is_clean(),
        "generated kernel failed static verification:\n{}",
        analysis.report.render(Some(k))
    );
    brick_obs::counter_add("sweep.lint_verified", 1);
    cache.insert(fp, ());
}

/// Build the kernel spec for a configuration at a SIMD width.
pub fn build_spec(shape: &StencilShape, config: KernelConfig, width: usize) -> KernelSpec {
    let st = shape.stencil();
    let b = st.default_bindings();
    if config.codegen() {
        KernelSpec::Vector(
            generate(&st, &b, config.layout(), width, CodegenOptions::default())
                .expect("paper stencils are within codegen limits"),
        )
    } else {
        KernelSpec::Scalar(
            ScalarKernel::new(&st, &b, config.layout(), width)
                .expect("default bindings cover all symbols"),
        )
    }
}

/// Build the trace geometry for a layout at a domain size.
pub fn build_geometry(layout: LayoutKind, n: usize, width: usize, radius: usize) -> TraceGeometry {
    let dims = BrickDims::for_simd_width(width);
    match layout {
        LayoutKind::Brick => {
            let decomp = Arc::new(BrickDecomp::new(
                (n, n, n),
                dims,
                radius,
                BrickOrdering::Lexicographic,
            ));
            TraceGeometry::brick(Arc::new(BrickNav::new(decomp)))
        }
        LayoutKind::Array => TraceGeometry::array((n, n, n), radius, dims),
    }
}

/// Run the full study matrix: 6 stencils × 3 configurations × the
/// paper's 6 (GPU, model) pairs.
///
/// Memory simulations are shared between programming models whose trace
/// and resident-wave shape coincide (CUDA and its HIP wrapper always do),
/// so the matrix costs 3 GPUs' worth of traces, not 6.
pub fn sweep(params: ExperimentParams) -> Sweep {
    params.validate().expect("invalid experiment parameters");
    let sweep_start = std::time::Instant::now();
    let manifest =
        brick_obs::RunManifest::begin(&serde_json::to_string(&params).expect("params serialize"));
    let _span = brick_obs::span_cat(format!("sweep:{}^3", params.n), "sweep");
    let n = params.n;
    let archs: Vec<GpuArch> = GpuArch::all();
    let matrix = ProgModel::paper_matrix();

    let mut rooflines = Vec::new();
    {
        let _s = brick_obs::span_cat("rooflines", "sweep");
        for &(gpu, model) in &matrix {
            let arch = archs.iter().find(|a| a.kind == gpu).unwrap();
            if let Some(r) = measure(arch, model) {
                rooflines.push(((gpu, model), r));
            }
        }
    }
    brick_obs::info!("measured {} rooflines, sweeping at n={n}", rooflines.len());

    let total_points =
        (StencilShape::paper_suite().len() * KernelConfig::all().len() * matrix.len()) as u64;
    let progress = brick_obs::Progress::new(
        "sweep",
        total_points,
        brick_obs::log_level_enabled(brick_obs::Level::Info),
    );
    let mut record_wall_s: Vec<f64> = Vec::new();

    // trace cache: (gpu, stencil, config, blocks_per_sm) -> counters
    let mut mem_cache: HashMap<(GpuKind, String, KernelConfig, u32), MemCounters> = HashMap::new();
    // geometry cache: (layout, width, radius) -> geometry
    let mut geom_cache: HashMap<(LayoutKind, usize, usize), TraceGeometry> = HashMap::new();
    // verification cache: kernel fingerprint -> verified
    let mut lint_cache: HashMap<u64, ()> = HashMap::new();

    let mut records = Vec::new();
    for shape in StencilShape::paper_suite() {
        let analysis = StencilAnalysis::of_shape(&shape);
        for arch in &archs {
            let width = arch.simd_width;
            let radius = shape.radius as usize;
            let mut specs: HashMap<KernelConfig, KernelSpec> = HashMap::new();
            for config in KernelConfig::all() {
                let spec = build_spec(&shape, config, width);
                verify_spec(&spec, &shape, arch, &mut lint_cache);
                specs.insert(config, spec);
            }
            for &(gpu, model) in &matrix {
                if gpu != arch.kind {
                    continue;
                }
                for config in KernelConfig::all() {
                    let record_start = std::time::Instant::now();
                    let _rec_span = brick_obs::span_cat(
                        format!("{}/{config}/{gpu}/{model}", shape.label()),
                        "record",
                    );
                    let spec = &specs[&config];
                    let Some((cm, compiled, occ)) = compile_only(spec, arch, model) else {
                        progress.tick();
                        continue;
                    };
                    let geom = geom_cache
                        .entry((config.layout(), width, radius))
                        .or_insert_with(|| build_geometry(config.layout(), n, width, radius));
                    let key = (gpu, shape.label(), config, occ.blocks_per_sm);
                    let mem = *mem_cache.entry(key).or_insert_with(|| {
                        simulate_memory(spec, geom, arch, occ.blocks_per_sm).counters()
                    });
                    let sim = assemble(
                        spec,
                        geom,
                        arch,
                        &cm,
                        &compiled,
                        mem,
                        analysis.flops_per_point,
                    );
                    let rl = rooflines
                        .iter()
                        .find(|((g, m), _)| *g == gpu && *m == model)
                        .map(|(_, r)| *r)
                        .expect("roofline measured for every supported pair");
                    records.push(Record {
                        shape,
                        stencil: shape.label(),
                        config,
                        gpu,
                        model,
                        gflops: sim.gflops,
                        ai: sim.ai,
                        theoretical_ai: analysis.theoretical_ai,
                        frac_roofline: rl.fraction(sim.gflops, sim.ai),
                        frac_theoretical_ai: sim.ai / analysis.theoretical_ai,
                        l1_bytes: sim.mem.l1_bytes,
                        l2_bytes: sim.mem.l2_bytes,
                        dram_bytes: sim.mem.dram_bytes,
                        time_s: sim.time_s,
                        occupancy: sim.occupancy.occupancy,
                        regs_per_thread: sim.regs_per_thread,
                        spilled: sim.spilled,
                        limiter: sim.breakdown.limiter().to_string(),
                    });
                    record_wall_s.push(record_start.elapsed().as_secs_f64());
                    progress.tick();
                }
            }
        }
        brick_obs::debug!("finished stencil {}", shape.label());
    }

    let manifest = manifest.finish(sweep_start.elapsed().as_secs_f64(), record_wall_s);
    Sweep {
        params,
        records,
        rooflines,
        manifest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::shared_sweep;

    fn test_sweep() -> &'static Sweep {
        shared_sweep()
    }

    #[test]
    fn sweep_covers_the_full_matrix() {
        let s = test_sweep();
        // 6 stencils × 3 configs × 6 (gpu, model) pairs
        assert_eq!(s.records.len(), 6 * 3 * 6);
        assert_eq!(s.rooflines.len(), 6);
        for &(gpu, model) in &ProgModel::paper_matrix() {
            let recs = s.select(Some(gpu), Some(model), None);
            assert_eq!(recs.len(), 18, "{gpu} {model}");
        }
    }

    #[test]
    fn hip_wrapper_matches_cuda_in_sweep() {
        let s = test_sweep();
        for config in KernelConfig::all() {
            for stencil in ["7pt", "125pt"] {
                let c = s
                    .point(GpuKind::A100, ProgModel::Cuda, config, stencil)
                    .unwrap();
                let h = s
                    .point(GpuKind::A100, ProgModel::Hip, config, stencil)
                    .unwrap();
                assert_eq!(c.dram_bytes, h.dram_bytes);
                assert!((c.gflops - h.gflops).abs() / c.gflops < 1e-9);
            }
        }
    }

    #[test]
    fn bricks_codegen_wins_on_every_platform() {
        let s = test_sweep();
        for &(gpu, model) in &ProgModel::paper_matrix() {
            for stencil in ["7pt", "13pt", "27pt", "125pt"] {
                let bricks = s
                    .point(gpu, model, KernelConfig::BricksCodegen, stencil)
                    .unwrap();
                let array = s.point(gpu, model, KernelConfig::Array, stencil).unwrap();
                // At the 128³ test size the MI250X domain is only two
                // 64-wide bricks across (half the brick shell is ghost),
                // which costs the brick layout up to ~20% here; on the
                // other GPUs the shell is small. Full-scale ordering is
                // checked by the 256³/512³ benchmark runs.
                let tolerance = if gpu == GpuKind::Mi250xGcd { 0.8 } else { 0.95 };
                assert!(
                    bricks.gflops >= array.gflops * tolerance,
                    "{gpu} {model} {stencil}: bricks {:.0} < array {:.0}",
                    bricks.gflops,
                    array.gflops
                );
            }
        }
    }

    #[test]
    fn verify_spec_caches_by_fingerprint() {
        let shape = StencilShape::star(1);
        let arch = GpuArch::a100();
        let spec = build_spec(&shape, KernelConfig::BricksCodegen, arch.simd_width);
        let mut cache = HashMap::new();
        verify_spec(&spec, &shape, &arch, &mut cache);
        assert_eq!(cache.len(), 1, "vector kernel verified and cached");
        verify_spec(&spec, &shape, &arch, &mut cache);
        assert_eq!(cache.len(), 1, "second verification hits the cache");
        // scalar kernels have no IR and don't populate the cache
        let scalar = build_spec(&shape, KernelConfig::Array, arch.simd_width);
        verify_spec(&scalar, &shape, &arch, &mut cache);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn fractions_are_sane() {
        let s = test_sweep();
        for r in &s.records {
            assert!(r.frac_roofline > 0.0 && r.frac_roofline <= 1.2, "{r:?}");
            assert!(
                r.frac_theoretical_ai > 0.0 && r.frac_theoretical_ai <= 1.001,
                "{r:?}"
            );
            assert!(r.l1_bytes >= r.dram_bytes, "{r:?}");
        }
    }
}
