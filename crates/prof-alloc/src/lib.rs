//! # prof-alloc
//!
//! A counting wrapper around the system allocator, installed as the
//! process-wide `#[global_allocator]` for every binary that links this
//! crate (directly or through `brick-prof`). It maintains two monotone
//! "allocation clocks":
//!
//! * [`thread_allocated_bytes`] — bytes allocated by the *current thread*
//!   since it started. Reading it twice and subtracting gives the exact
//!   allocation volume of the code in between, which is how `brick-obs`
//!   spans attribute heap traffic (see `brick_obs::span::set_alloc_clock`).
//! * [`global_allocated_bytes`] — bytes allocated by the whole process.
//!
//! Only allocations are counted (plus the grown tail of reallocations);
//! frees are not subtracted. A *clock* must be monotone — profilers
//! difference it across span boundaries, and a net-bytes gauge would go
//! backwards and produce negative deltas under churn.
//!
//! The counting costs one thread-local add per allocation on top of the
//! system allocator; the `obs_overhead` bench gates the end-to-end cost.
//!
//! This crate is the workspace's single sanctioned `unsafe` island: the
//! `GlobalAlloc` trait is unsafe by signature, so the crate opts out of
//! the workspace-wide `unsafe_code = "forbid"` lint and keeps the unsafe
//! surface to pure delegation into [`std::alloc::System`].

#![warn(missing_docs)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide allocation clock (bytes allocated, never decremented).
static GLOBAL_ALLOCATED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread allocation clock. `const` init keeps the fast path a
    /// plain TLS add with no lazy-initialisation branch.
    static THREAD_ALLOCATED: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn count(bytes: usize) {
    let bytes = bytes as u64;
    GLOBAL_ALLOCATED.fetch_add(bytes, Ordering::Relaxed);
    // During thread teardown the TLS slot may already be destroyed;
    // dropping those few bytes from the per-thread clock is harmless
    // (the global clock still sees them).
    let _ = THREAD_ALLOCATED.try_with(|t| t.set(t.get() + bytes));
}

/// Bytes allocated by the current thread since it started. Monotone;
/// difference two readings to measure a region.
#[inline]
pub fn thread_allocated_bytes() -> u64 {
    THREAD_ALLOCATED.try_with(Cell::get).unwrap_or(0)
}

/// Bytes allocated by the whole process since start. Monotone.
#[inline]
pub fn global_allocated_bytes() -> u64 {
    GLOBAL_ALLOCATED.load(Ordering::Relaxed)
}

/// The counting allocator: [`System`] plus the two clocks above.
pub struct CountingAlloc;

// SAFETY: pure delegation to `System`, which upholds every GlobalAlloc
// contract; the added counting touches only our own atomics/TLS and
// never the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            count(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            count(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() && new_size > layout.size() {
            count(new_size - layout.size());
        }
        p
    }
}

/// Installed for every binary in the dependency closure of this crate.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clocks_advance_with_allocations() {
        let t0 = thread_allocated_bytes();
        let g0 = global_allocated_bytes();
        let v: Vec<u8> = Vec::with_capacity(1 << 16);
        let t1 = thread_allocated_bytes();
        let g1 = global_allocated_bytes();
        assert!(t1 >= t0 + (1 << 16), "thread clock {t0} -> {t1}");
        assert!(g1 >= g0 + (1 << 16), "global clock {g0} -> {g1}");
        drop(v);
        // monotone: frees are not subtracted
        assert!(thread_allocated_bytes() >= t1);
    }

    #[test]
    fn realloc_growth_is_counted() {
        let t0 = thread_allocated_bytes();
        let mut v: Vec<u8> = Vec::with_capacity(16);
        for i in 0..4096u32 {
            v.push(i as u8);
        }
        assert!(thread_allocated_bytes() >= t0 + 4096);
    }

    #[test]
    fn other_threads_do_not_advance_this_clock() {
        let t0 = thread_allocated_bytes();
        std::thread::spawn(|| {
            let _big: Vec<u8> = Vec::with_capacity(1 << 20);
            assert!(thread_allocated_bytes() >= 1 << 20);
        })
        .join()
        .unwrap();
        // this thread's clock unchanged by the worker's megabyte (join
        // itself may allocate a little, so allow slack well under 1 MiB)
        assert!(thread_allocated_bytes() - t0 < 1 << 18);
    }
}
