//! # brick-core
//!
//! The brick data layout: fine-grained data blocking for stencil grids, as
//! introduced by BrickLib and evaluated in *"Performance Portability
//! Evaluation of Blocked Stencil Computations on GPUs"* (SC-W 2023, §3).
//!
//! A **brick** is a small 3-D sub-domain (`4 × 4 × SIMD_width` elements in
//! the paper's experiments) stored in contiguous memory. Bricks carry no
//! per-brick ghost zones; instead, a 27-entry **adjacency table** links
//! each brick to its neighbours so stencil accesses that cross a brick
//! boundary are redirected into the neighbouring brick's storage. A layer
//! of **ghost bricks** surrounds the domain, playing the role of the ghost
//! cells of a conventional array layout.
//!
//! The crate provides:
//!
//! * [`BrickDims`] — brick geometry (`x` dimension = architecture SIMD
//!   width: 32 on NVIDIA A100, 64 on AMD MI250X, 16 on Intel PVC);
//! * [`BrickDecomp`] — the grid-of-bricks decomposition with a pluggable
//!   memory ordering ([`BrickOrdering`]: lexicographic or Morton);
//! * [`BrickGrid`] — the storage slab plus adjacency, with logical
//!   accessors and dense-grid conversion;
//! * [`ArrayGrid`] — the conventional array layout baseline with 3-D
//!   tiling metadata, used by the paper's `array` and `array codegen`
//!   configurations.
//!
//! ```
//! use brick_core::{ArrayGrid, BrickDims, BrickGrid};
//! use brick_dsl::DenseGrid;
//!
//! let mut dense = DenseGrid::cubic(8, 4);
//! dense.fill_test_pattern();
//!
//! let dims = BrickDims::new(4, 4, 4); // toy brick: 4x4x4
//! let bricks = BrickGrid::from_dense(&dense, dims);
//! assert_eq!(bricks.to_dense().max_abs_diff(&dense), 0.0);
//!
//! // cross-brick logical access equals the dense value
//! assert_eq!(bricks.get(5, 3, -2), dense.get(5, 3, -2));
//!
//! let array = ArrayGrid::from_dense(&dense);
//! assert_eq!(array.get(5, 3, -2), dense.get(5, 3, -2));
//! ```

pub mod adjacency;
pub mod array;
pub mod decomp;
pub mod grid;
pub mod layout;
pub mod nav;

pub use adjacency::{neighbor_index, BrickInfo, NO_BRICK};
pub use array::{ArrayGrid, Tile, TileIter};
pub use decomp::{BrickDecomp, BrickOrdering};
pub use grid::BrickGrid;
pub use layout::BrickDims;
pub use nav::BrickNav;
