//! Conventional array layout with 3-D tiling — the paper's baseline.
//!
//! The `array` configuration stores the field lexicographically (a
//! [`DenseGrid`]) and tiles the iteration space into `4 × 4 × SIMD_width`
//! tiles mapped to the `⟨z, y, x⟩` thread dimensions of a GPU thread
//! block. Unlike a brick, a tile is only an *iteration-space* construct:
//! its elements still live in `tz·ty` separate address streams of the big
//! array, which is exactly the data-movement disadvantage the paper
//! quantifies.

use brick_dsl::DenseGrid;

use crate::layout::BrickDims;

/// One tile of the iteration space: `dims` elements starting at the
/// interior point `origin`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile {
    /// Interior coordinates of the tile's first point `[x, y, z]`.
    pub origin: [i64; 3],
    /// Tile extents (same shape as the brick dims of the bricked runs).
    pub dims: BrickDims,
}

impl Tile {
    /// Iterate the tile's points in `(z, y, x)` order, x fastest.
    pub fn points(&self) -> impl Iterator<Item = (i64, i64, i64)> + '_ {
        let [ox, oy, oz] = self.origin;
        let d = self.dims;
        (0..d.bz as i64).flat_map(move |z| {
            (0..d.by as i64)
                .flat_map(move |y| (0..d.bx as i64).map(move |x| (ox + x, oy + y, oz + z)))
        })
    }
}

/// Iterator over the tiles covering a domain, in `(z, y, x)` launch order
/// (one GPU thread block per tile).
pub struct TileIter {
    extents: (usize, usize, usize),
    dims: BrickDims,
    next: usize,
    total: usize,
}

impl TileIter {
    /// Tiles of `dims` covering a domain of `extents` interior points
    /// (standalone constructor for geometry-only consumers like the trace
    /// generator).
    pub fn over(extents: (usize, usize, usize), dims: BrickDims) -> Self {
        Self::new(extents, dims)
    }

    fn new(extents: (usize, usize, usize), dims: BrickDims) -> Self {
        let (nx, ny, nz) = extents;
        assert!(
            nx % dims.bx == 0 && ny % dims.by == 0 && nz % dims.bz == 0,
            "domain {nx}x{ny}x{nz} not divisible by tile {dims}"
        );
        let total = (nx / dims.bx) * (ny / dims.by) * (nz / dims.bz);
        TileIter {
            extents,
            dims,
            next: 0,
            total,
        }
    }

    /// Number of tiles.
    pub fn len(&self) -> usize {
        self.total
    }

    /// True if the domain has no tiles (never happens for valid grids).
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The `i`-th tile in launch order.
    pub fn tile(&self, i: usize) -> Tile {
        assert!(i < self.total);
        let (nx, ny, _) = self.extents;
        let tx = nx / self.dims.bx;
        let ty = ny / self.dims.by;
        let (iz, rem) = (i / (tx * ty), i % (tx * ty));
        let (iy, ix) = (rem / tx, rem % tx);
        Tile {
            origin: [
                (ix * self.dims.bx) as i64,
                (iy * self.dims.by) as i64,
                (iz * self.dims.bz) as i64,
            ],
            dims: self.dims,
        }
    }
}

impl Iterator for TileIter {
    type Item = Tile;
    fn next(&mut self) -> Option<Tile> {
        if self.next >= self.total {
            return None;
        }
        let t = self.tile(self.next);
        self.next += 1;
        Some(t)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.total - self.next;
        (left, Some(left))
    }
}

impl ExactSizeIterator for TileIter {}

/// A field in conventional (lexicographic) array layout.
///
/// Thin wrapper over [`DenseGrid`] adding tiling and the flat-address view
/// the GPU simulator traces.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayGrid {
    dense: DenseGrid,
}

impl ArrayGrid {
    /// Wrap an existing dense grid (copies).
    pub fn from_dense(dense: &DenseGrid) -> Self {
        ArrayGrid {
            dense: dense.clone(),
        }
    }

    /// Zero-filled array grid.
    pub fn new(nx: usize, ny: usize, nz: usize, halo: usize) -> Self {
        ArrayGrid {
            dense: DenseGrid::new(nx, ny, nz, halo),
        }
    }

    /// The wrapped dense grid.
    pub fn dense(&self) -> &DenseGrid {
        &self.dense
    }

    /// Mutable view of the wrapped dense grid.
    pub fn dense_mut(&mut self) -> &mut DenseGrid {
        &mut self.dense
    }

    /// Convert back to a dense grid (copies).
    pub fn to_dense(&self) -> DenseGrid {
        self.dense.clone()
    }

    /// Interior extents.
    pub fn extents(&self) -> (usize, usize, usize) {
        self.dense.extents()
    }

    /// Read at logical coordinates.
    #[inline]
    pub fn get(&self, x: i64, y: i64, z: i64) -> f64 {
        self.dense.get(x, y, z)
    }

    /// Write at logical coordinates.
    #[inline]
    pub fn set(&mut self, x: i64, y: i64, z: i64, v: f64) {
        self.dense.set(x, y, z, v)
    }

    /// Byte address (relative to the array base) of a logical point — the
    /// address stream the GPU simulator sees for array-layout kernels.
    #[inline]
    pub fn element_addr(&self, x: i64, y: i64, z: i64) -> u64 {
        self.dense.storage_index(x, y, z) as u64 * 8
    }

    /// Tiles covering the interior with `4 × 4 × simd_width` tiles.
    pub fn tiles(&self, simd_width: usize) -> TileIter {
        self.tiles_of(BrickDims::for_simd_width(simd_width))
    }

    /// Tiles of arbitrary shape.
    pub fn tiles_of(&self, dims: BrickDims) -> TileIter {
        TileIter::new(self.dense.extents(), dims)
    }

    /// Number of distinct `x`-rows (address streams) a tile of `dims`
    /// touches, including the stencil reach: the locality metric the paper
    /// contrasts with a brick's single stream.
    pub fn tile_address_streams(dims: BrickDims, reach: [i32; 3]) -> usize {
        (dims.by + 2 * reach[1] as usize) * (dims.bz + 2 * reach[2] as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize, halo: usize) -> ArrayGrid {
        let mut d = DenseGrid::cubic(n, halo);
        d.fill_test_pattern();
        ArrayGrid::from_dense(&d)
    }

    #[test]
    fn tiles_cover_domain_exactly_once() {
        let g = grid(8, 1);
        let tiles: Vec<Tile> = g.tiles_of(BrickDims::new(4, 4, 4)).collect();
        assert_eq!(tiles.len(), 8);
        let mut seen = vec![false; 512];
        for t in &tiles {
            for (x, y, z) in t.points() {
                let i = (z * 64 + y * 8 + x) as usize;
                assert!(!seen[i], "point visited twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn tile_launch_order_is_zyx() {
        let g = grid(8, 0);
        let it = g.tiles_of(BrickDims::new(4, 4, 4));
        assert_eq!(it.tile(0).origin, [0, 0, 0]);
        assert_eq!(it.tile(1).origin, [4, 0, 0]);
        assert_eq!(it.tile(2).origin, [0, 4, 0]);
        assert_eq!(it.tile(4).origin, [0, 0, 4]);
    }

    #[test]
    fn tile_points_x_fastest() {
        let t = Tile {
            origin: [4, 0, 0],
            dims: BrickDims::new(4, 2, 1),
        };
        let pts: Vec<_> = t.points().collect();
        assert_eq!(pts[0], (4, 0, 0));
        assert_eq!(pts[1], (5, 0, 0));
        assert_eq!(pts[4], (4, 1, 0));
        assert_eq!(pts.len(), 8);
    }

    #[test]
    fn addresses_are_contiguous_in_x() {
        let g = grid(8, 2);
        let a0 = g.element_addr(0, 0, 0);
        assert_eq!(g.element_addr(1, 0, 0), a0 + 8);
        // y-step crosses a full padded row: (8 + 2*2) * 8 bytes
        assert_eq!(g.element_addr(0, 1, 0), a0 + 12 * 8);
    }

    #[test]
    fn address_streams_grow_with_reach() {
        let dims = BrickDims::for_simd_width(32);
        assert_eq!(ArrayGrid::tile_address_streams(dims, [0, 0, 0]), 16);
        assert_eq!(ArrayGrid::tile_address_streams(dims, [1, 1, 1]), 36);
        assert_eq!(ArrayGrid::tile_address_streams(dims, [4, 4, 4]), 144);
    }

    #[test]
    fn exact_size_iterator() {
        let g = grid(8, 0);
        let mut it = g.tiles_of(BrickDims::new(4, 4, 4));
        assert_eq!(it.len(), 8);
        it.next();
        assert_eq!(it.size_hint(), (7, Some(7)));
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn misaligned_tiles_panic() {
        let g = grid(8, 0);
        let _ = g.tiles_of(BrickDims::new(3, 4, 4));
    }
}
