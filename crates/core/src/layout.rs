//! Brick geometry.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Dimensions of a single brick in elements: `bx × by × bz` with `bx` the
/// contiguous dimension.
///
/// The paper's experiments use `4 × 4 × SIMD_width` bricks, i.e.
/// `bx = SIMD_width`, `by = bz = 4`; [`BrickDims::for_simd_width`] builds
/// exactly that configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BrickDims {
    /// Extent along the contiguous `x` dimension (the vector-folded one).
    pub bx: usize,
    /// Extent along `y`.
    pub by: usize,
    /// Extent along `z`.
    pub bz: usize,
}

impl BrickDims {
    /// Arbitrary brick dimensions (each ≥ 1).
    pub fn new(bx: usize, by: usize, bz: usize) -> Self {
        assert!(bx >= 1 && by >= 1 && bz >= 1, "empty brick");
        BrickDims { bx, by, bz }
    }

    /// The paper's brick shape for a given architecture SIMD width:
    /// `4 × 4 × SIMD_width`.
    pub fn for_simd_width(simd_width: usize) -> Self {
        Self::new(simd_width, 4, 4)
    }

    /// Elements per brick.
    pub fn volume(&self) -> usize {
        self.bx * self.by * self.bz
    }

    /// Bytes per brick for `f64` elements.
    pub fn bytes(&self) -> usize {
        self.volume() * std::mem::size_of::<f64>()
    }

    /// Flat element offset of `(x, y, z)` inside a brick; coordinates must
    /// be in range.
    #[inline]
    pub fn element_offset(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.bx && y < self.by && z < self.bz);
        (z * self.by + y) * self.bx + x
    }

    /// Flat offset of the start of row `(y, z)` — the natural vector-load
    /// granule when `bx` equals the architecture vector width.
    #[inline]
    pub fn row_offset(&self, y: usize, z: usize) -> usize {
        self.element_offset(0, y, z)
    }

    /// Number of `bx`-element rows in a brick.
    pub fn rows(&self) -> usize {
        self.by * self.bz
    }
}

impl fmt::Display for BrickDims {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Displayed z-major to match the paper's "4 x 4 x SIMD" phrasing.
        write!(f, "{}x{}x{}", self.bz, self.by, self.bx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_brick_shapes() {
        for (w, vol) in [(32usize, 512usize), (64, 1024), (16, 256)] {
            let d = BrickDims::for_simd_width(w);
            assert_eq!((d.bx, d.by, d.bz), (w, 4, 4));
            assert_eq!(d.volume(), vol);
            assert_eq!(d.bytes(), vol * 8);
        }
    }

    #[test]
    fn element_offset_is_row_major_in_x() {
        let d = BrickDims::new(8, 4, 4);
        assert_eq!(d.element_offset(0, 0, 0), 0);
        assert_eq!(d.element_offset(1, 0, 0), 1);
        assert_eq!(d.element_offset(0, 1, 0), 8);
        assert_eq!(d.element_offset(0, 0, 1), 32);
        assert_eq!(d.element_offset(7, 3, 3), d.volume() - 1);
    }

    #[test]
    fn row_offset_strides_by_bx() {
        let d = BrickDims::new(16, 4, 4);
        assert_eq!(d.row_offset(0, 0), 0);
        assert_eq!(d.row_offset(1, 0), 16);
        assert_eq!(d.row_offset(0, 1), 64);
        assert_eq!(d.rows(), 16);
    }

    #[test]
    fn display_is_z_major() {
        assert_eq!(BrickDims::for_simd_width(32).to_string(), "4x4x32");
    }

    #[test]
    #[should_panic(expected = "empty brick")]
    fn zero_dim_panics() {
        let _ = BrickDims::new(0, 4, 4);
    }
}
