//! Brick adjacency: the 27-neighbour table that replaces ghost zones.
//!
//! Every brick stores the ids of its `3×3×3` neighbourhood (itself in the
//! middle). A stencil access that steps outside a brick is redirected via
//! this table, which is what lets bricks live anywhere in memory while the
//! logical grid stays contiguous — the defining flexibility of the layout.

use serde::{Deserialize, Serialize};

/// Sentinel for "no neighbour" (outside the allocated brick shell).
/// Dereferencing it is a logic error and panics in the accessors.
pub const NO_BRICK: u32 = u32::MAX;

/// Flat index into a 27-entry neighbour table for a per-dimension step
/// `(dx, dy, dz)`, each in `{-1, 0, 1}`. The centre (self) is index 13.
#[inline]
pub fn neighbor_index(dx: i32, dy: i32, dz: i32) -> usize {
    debug_assert!((-1..=1).contains(&dx) && (-1..=1).contains(&dy) && (-1..=1).contains(&dz));
    (((dz + 1) * 3 + (dy + 1)) * 3 + (dx + 1)) as usize
}

/// Adjacency info for a set of bricks: `adj[brick][neighbor_index]`.
///
/// Mirrors BrickLib's `BrickInfo` structure (the `bInfo` argument of the
/// paper's Fig. 2 kernels).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BrickInfo {
    adj: Vec<[u32; 27]>,
}

impl BrickInfo {
    /// Adjacency table with every entry unset.
    pub fn new(num_bricks: usize) -> Self {
        BrickInfo {
            adj: vec![[NO_BRICK; 27]; num_bricks],
        }
    }

    /// Number of bricks covered.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True if no bricks are covered.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Set the neighbour of `brick` in direction `(dx, dy, dz)`.
    pub fn set_neighbor(&mut self, brick: u32, dx: i32, dy: i32, dz: i32, neighbor: u32) {
        self.adj[brick as usize][neighbor_index(dx, dy, dz)] = neighbor;
    }

    /// Neighbour of `brick` in direction `(dx, dy, dz)`; `NO_BRICK` if
    /// outside the shell.
    #[inline]
    pub fn neighbor(&self, brick: u32, dx: i32, dy: i32, dz: i32) -> u32 {
        self.adj[brick as usize][neighbor_index(dx, dy, dz)]
    }

    /// Neighbour lookup that panics on `NO_BRICK`, for accessors that have
    /// already validated the access is within the ghost shell.
    #[inline]
    pub fn expect_neighbor(&self, brick: u32, dx: i32, dy: i32, dz: i32) -> u32 {
        let n = self.neighbor(brick, dx, dy, dz);
        assert_ne!(
            n, NO_BRICK,
            "brick {brick} has no ({dx},{dy},{dz}) neighbor: access leaves the ghost shell"
        );
        n
    }

    /// Raw 27-entry row for one brick.
    pub fn row(&self, brick: u32) -> &[u32; 27] {
        &self.adj[brick as usize]
    }

    /// Bytes of adjacency metadata (reported as layout overhead).
    pub fn metadata_bytes(&self) -> usize {
        self.adj.len() * 27 * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbor_index_layout() {
        assert_eq!(neighbor_index(0, 0, 0), 13);
        assert_eq!(neighbor_index(-1, -1, -1), 0);
        assert_eq!(neighbor_index(1, 1, 1), 26);
        assert_eq!(neighbor_index(1, 0, 0), 14);
        assert_eq!(neighbor_index(0, 1, 0), 16);
        assert_eq!(neighbor_index(0, 0, 1), 22);
    }

    #[test]
    fn all_27_indices_distinct() {
        let mut seen = [false; 27];
        for dz in -1..=1 {
            for dy in -1..=1 {
                for dx in -1..=1 {
                    let i = neighbor_index(dx, dy, dz);
                    assert!(!seen[i]);
                    seen[i] = true;
                }
            }
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn set_and_get_neighbor() {
        let mut info = BrickInfo::new(3);
        info.set_neighbor(0, 1, 0, 0, 1);
        info.set_neighbor(1, -1, 0, 0, 0);
        assert_eq!(info.neighbor(0, 1, 0, 0), 1);
        assert_eq!(info.neighbor(1, -1, 0, 0), 0);
        assert_eq!(info.neighbor(0, 0, 0, 1), NO_BRICK);
        assert_eq!(info.expect_neighbor(0, 1, 0, 0), 1);
    }

    #[test]
    #[should_panic(expected = "no (0,0,1) neighbor")]
    fn expect_neighbor_panics_on_missing() {
        let info = BrickInfo::new(1);
        info.expect_neighbor(0, 0, 0, 1);
    }

    #[test]
    fn metadata_bytes_counts_u32s() {
        let info = BrickInfo::new(10);
        assert_eq!(info.metadata_bytes(), 10 * 27 * 4);
    }
}
