//! Data-free brick navigation.
//!
//! [`BrickNav`] bundles a decomposition with its adjacency table and
//! resolves brick-relative coordinates to `(brick, element offset)` —
//! everything an address-trace generator needs, without holding any field
//! data. [`crate::BrickGrid`] delegates its accessors here.

use std::sync::Arc;

use crate::adjacency::BrickInfo;
use crate::decomp::BrickDecomp;
use crate::layout::BrickDims;

/// Decomposition + adjacency, shared by all grids of one experiment.
#[derive(Debug, Clone)]
pub struct BrickNav {
    decomp: Arc<BrickDecomp>,
    info: Arc<BrickInfo>,
}

impl BrickNav {
    /// Build the adjacency table for `decomp`.
    pub fn new(decomp: Arc<BrickDecomp>) -> Self {
        let info = Arc::new(decomp.build_adjacency());
        BrickNav { decomp, info }
    }

    /// Reuse an existing adjacency table.
    pub fn from_parts(decomp: Arc<BrickDecomp>, info: Arc<BrickInfo>) -> Self {
        debug_assert_eq!(decomp.num_bricks(), info.len());
        BrickNav { decomp, info }
    }

    /// The decomposition.
    pub fn decomp(&self) -> &Arc<BrickDecomp> {
        &self.decomp
    }

    /// The adjacency table.
    pub fn info(&self) -> &Arc<BrickInfo> {
        &self.info
    }

    /// Brick geometry.
    pub fn dims(&self) -> BrickDims {
        self.decomp.dims()
    }

    /// Resolve brick-relative coordinates to `(brick, element offset)`
    /// through the adjacency table; local coordinates may extend one brick
    /// beyond `0..bdim` on each axis.
    #[inline]
    pub fn resolve_rel(&self, brick: u32, lx: i64, ly: i64, lz: i64) -> (u32, usize) {
        let dims = self.dims();
        let b = [dims.bx as i64, dims.by as i64, dims.bz as i64];
        let l = [lx, ly, lz];
        let mut step = [0i32; 3];
        let mut loc = [0usize; 3];
        for d in 0..3 {
            debug_assert!(
                l[d] >= -b[d] && l[d] < 2 * b[d],
                "relative coordinate {} exceeds one brick of reach on axis {d}",
                l[d]
            );
            step[d] = l[d].div_euclid(b[d]) as i32;
            loc[d] = l[d].rem_euclid(b[d]) as usize;
        }
        let target = if step == [0, 0, 0] {
            brick
        } else {
            self.info.expect_neighbor(brick, step[0], step[1], step[2])
        };
        (target, dims.element_offset(loc[0], loc[1], loc[2]))
    }

    /// Byte address (relative to the slab base) of a brick element.
    #[inline]
    pub fn element_addr(&self, brick: u32, offset: usize) -> u64 {
        ((brick as u64 * self.dims().volume() as u64) + offset as u64) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::BrickOrdering;

    #[test]
    fn nav_resolves_like_grid() {
        let decomp = Arc::new(BrickDecomp::new(
            (8, 8, 8),
            BrickDims::new(4, 4, 4),
            2,
            BrickOrdering::Lexicographic,
        ));
        let nav = BrickNav::new(Arc::clone(&decomp));
        let home = decomp.brick_at(1, 1, 1);
        // in-brick
        assert_eq!(
            nav.resolve_rel(home, 1, 2, 3),
            (home, nav.dims().element_offset(1, 2, 3))
        );
        // +x neighbour
        let (b, off) = nav.resolve_rel(home, 5, 0, 0);
        assert_eq!(b, decomp.brick_at(2, 1, 1));
        assert_eq!(off, nav.dims().element_offset(1, 0, 0));
        // -z ghost
        let (b, _) = nav.resolve_rel(home, 0, 0, -1);
        assert_eq!(b, decomp.brick_at(1, 1, 0));
    }

    #[test]
    fn element_addr_scales_by_brick_volume() {
        let decomp = Arc::new(BrickDecomp::new(
            (8, 8, 8),
            BrickDims::new(4, 4, 4),
            1,
            BrickOrdering::Lexicographic,
        ));
        let nav = BrickNav::new(decomp);
        assert_eq!(nav.element_addr(2, 3), (2 * 64 + 3) * 8);
    }
}
