//! Grid-of-bricks decomposition.
//!
//! Splits a 3-D domain into bricks, surrounds it with ghost bricks, and
//! assigns each brick a position in memory according to a pluggable
//! [`BrickOrdering`]. The indirection table produced here is the `grid`
//! array the paper's kernels index as `grid[tk][tj][ti]` (Fig. 2); because
//! all logical navigation goes through it (and through the adjacency
//! table), bricks may be laid out in any memory order — the flexibility
//! BrickLib autotunes over.

use serde::{Deserialize, Serialize};

use crate::adjacency::{BrickInfo, NO_BRICK};
use crate::layout::BrickDims;

/// Memory ordering of bricks within the storage slab.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum BrickOrdering {
    /// Row-major in brick-grid coordinates (x fastest).
    #[default]
    Lexicographic,
    /// Morton (Z-order) curve over brick-grid coordinates; improves
    /// locality between y/z-neighbouring bricks at the cost of x-stream
    /// continuity. Exposed for the layout-ablation experiments.
    Morton,
}

/// A brick decomposition of an `nx × ny × nz` domain with ghost bricks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BrickDecomp {
    dims: BrickDims,
    /// Interior extent in bricks per axis.
    interior: [usize; 3],
    /// Ghost layers in bricks per axis (each side).
    ghost: [usize; 3],
    ordering: BrickOrdering,
    /// Brick-grid coordinates (ghosts included) → brick id in memory.
    grid: Vec<u32>,
    /// Brick id → brick-grid coordinates.
    coords: Vec<[u32; 3]>,
}

impl BrickDecomp {
    /// Decompose a domain of `extents` interior points into bricks of
    /// `dims`, with enough ghost-brick layers to cover a stencil of
    /// `radius` on every axis.
    ///
    /// Each interior extent must be a positive multiple of the brick
    /// extent on that axis.
    pub fn new(
        extents: (usize, usize, usize),
        dims: BrickDims,
        radius: usize,
        ordering: BrickOrdering,
    ) -> Self {
        let (nx, ny, nz) = extents;
        let b = [dims.bx, dims.by, dims.bz];
        let n = [nx, ny, nz];
        for d in 0..3 {
            assert!(
                n[d] > 0 && n[d] % b[d] == 0,
                "domain extent {} (axis {d}) is not a positive multiple of brick extent {}",
                n[d],
                b[d]
            );
        }
        let interior = [nx / dims.bx, ny / dims.by, nz / dims.bz];
        let ghost = [
            radius.div_ceil(dims.bx).max(1),
            radius.div_ceil(dims.by).max(1),
            radius.div_ceil(dims.bz).max(1),
        ];
        let shell = [
            interior[0] + 2 * ghost[0],
            interior[1] + 2 * ghost[1],
            interior[2] + 2 * ghost[2],
        ];
        let total = shell[0] * shell[1] * shell[2];
        assert!(total < u32::MAX as usize, "too many bricks for u32 ids");

        // Enumerate all brick-grid coordinates, then order them.
        let mut order: Vec<[u32; 3]> = Vec::with_capacity(total);
        for tz in 0..shell[2] {
            for ty in 0..shell[1] {
                for tx in 0..shell[0] {
                    order.push([tx as u32, ty as u32, tz as u32]);
                }
            }
        }
        if ordering == BrickOrdering::Morton {
            order.sort_by_key(|c| morton3(c[0], c[1], c[2]));
        }

        let mut grid = vec![NO_BRICK; total];
        let mut coords = vec![[0u32; 3]; total];
        for (id, c) in order.iter().enumerate() {
            let flat = Self::flat(shell, *c);
            grid[flat] = id as u32;
            coords[id] = *c;
        }
        BrickDecomp {
            dims,
            interior,
            ghost,
            ordering,
            grid,
            coords,
        }
    }

    #[inline]
    fn flat(shell: [usize; 3], c: [u32; 3]) -> usize {
        (c[2] as usize * shell[1] + c[1] as usize) * shell[0] + c[0] as usize
    }

    /// Brick geometry.
    pub fn dims(&self) -> BrickDims {
        self.dims
    }

    /// The memory ordering in use.
    pub fn ordering(&self) -> BrickOrdering {
        self.ordering
    }

    /// Interior extent in bricks per axis `[x, y, z]`.
    pub fn interior_bricks(&self) -> [usize; 3] {
        self.interior
    }

    /// Ghost layers (bricks per side) per axis `[x, y, z]`.
    pub fn ghost_layers(&self) -> [usize; 3] {
        self.ghost
    }

    /// Shell extent (interior + ghosts) in bricks per axis.
    pub fn shell_bricks(&self) -> [usize; 3] {
        [
            self.interior[0] + 2 * self.ghost[0],
            self.interior[1] + 2 * self.ghost[1],
            self.interior[2] + 2 * self.ghost[2],
        ]
    }

    /// Total number of bricks (interior + ghosts).
    pub fn num_bricks(&self) -> usize {
        self.coords.len()
    }

    /// Number of interior bricks.
    pub fn num_interior_bricks(&self) -> usize {
        self.interior.iter().product()
    }

    /// Interior extent in points `(nx, ny, nz)`.
    pub fn extents(&self) -> (usize, usize, usize) {
        (
            self.interior[0] * self.dims.bx,
            self.interior[1] * self.dims.by,
            self.interior[2] * self.dims.bz,
        )
    }

    /// Brick id at shell coordinates `(tx, ty, tz)` (0-based over the full
    /// shell, ghosts included).
    #[inline]
    pub fn brick_at(&self, tx: usize, ty: usize, tz: usize) -> u32 {
        let shell = self.shell_bricks();
        debug_assert!(tx < shell[0] && ty < shell[1] && tz < shell[2]);
        self.grid[Self::flat(shell, [tx as u32, ty as u32, tz as u32])]
    }

    /// Shell coordinates of a brick id.
    #[inline]
    pub fn coords_of(&self, brick: u32) -> [u32; 3] {
        self.coords[brick as usize]
    }

    /// True if the brick is an interior (computed) brick.
    pub fn is_interior(&self, brick: u32) -> bool {
        let c = self.coords_of(brick);
        (0..3).all(|d| {
            (c[d] as usize) >= self.ghost[d] && (c[d] as usize) < self.ghost[d] + self.interior[d]
        })
    }

    /// Iterate over interior brick ids in shell-lexicographic order (the
    /// launch order of the paper's kernels: one thread block per brick).
    pub fn interior_bricks_iter(&self) -> impl Iterator<Item = u32> + '_ {
        let g = self.ghost;
        let i = self.interior;
        (g[2]..g[2] + i[2]).flat_map(move |tz| {
            (g[1]..g[1] + i[1])
                .flat_map(move |ty| (g[0]..g[0] + i[0]).map(move |tx| self.brick_at(tx, ty, tz)))
        })
    }

    /// The `i`-th interior brick in launch order (the order of
    /// [`Self::interior_bricks_iter`]), O(1).
    pub fn interior_brick(&self, i: usize) -> u32 {
        let n = self.interior;
        assert!(i < n[0] * n[1] * n[2], "interior brick index out of range");
        let tz = i / (n[0] * n[1]);
        let rem = i % (n[0] * n[1]);
        let (ty, tx) = (rem / n[0], rem % n[0]);
        self.brick_at(tx + self.ghost[0], ty + self.ghost[1], tz + self.ghost[2])
    }

    /// Build the adjacency table for all bricks. Neighbours outside the
    /// shell are [`NO_BRICK`].
    pub fn build_adjacency(&self) -> BrickInfo {
        let shell = self.shell_bricks();
        let mut info = BrickInfo::new(self.num_bricks());
        for id in 0..self.num_bricks() as u32 {
            let c = self.coords_of(id);
            for dz in -1i32..=1 {
                for dy in -1i32..=1 {
                    for dx in -1i32..=1 {
                        let n = [
                            c[0] as i64 + dx as i64,
                            c[1] as i64 + dy as i64,
                            c[2] as i64 + dz as i64,
                        ];
                        let inside = (0..3).all(|d| n[d] >= 0 && (n[d] as usize) < shell[d]);
                        if inside {
                            let nb = self.brick_at(n[0] as usize, n[1] as usize, n[2] as usize);
                            info.set_neighbor(id, dx, dy, dz, nb);
                        }
                    }
                }
            }
        }
        info
    }

    /// Locate a logical point in the decomposition.
    ///
    /// Coordinates follow the [`brick_dsl::DenseGrid`] convention: the
    /// interior is `0..n`, negative values address the halo (which lives
    /// in ghost bricks). Returns `(brick id, element offset within brick)`.
    #[inline]
    pub fn locate(&self, x: i64, y: i64, z: i64) -> (u32, usize) {
        let b = [
            self.dims.bx as i64,
            self.dims.by as i64,
            self.dims.bz as i64,
        ];
        let p = [x, y, z];
        let mut t = [0usize; 3];
        let mut l = [0usize; 3];
        for d in 0..3 {
            let shifted = p[d] + (self.ghost[d] as i64) * b[d];
            debug_assert!(
                shifted >= 0 && shifted < (self.shell_bricks()[d] as i64) * b[d],
                "point outside ghost shell on axis {d}"
            );
            t[d] = (shifted / b[d]) as usize;
            l[d] = (shifted % b[d]) as usize;
        }
        let brick = self.brick_at(t[0], t[1], t[2]);
        (brick, self.dims.element_offset(l[0], l[1], l[2]))
    }
}

/// 3-D Morton code (bit interleave) of brick-grid coordinates; supports
/// coordinates up to 2^21 − 1 which is far beyond any realistic brick
/// count.
fn morton3(x: u32, y: u32, z: u32) -> u64 {
    fn spread(v: u32) -> u64 {
        let mut v = v as u64 & 0x1f_ffff; // 21 bits
        v = (v | (v << 32)) & 0x1f00000000ffff;
        v = (v | (v << 16)) & 0x1f0000ff0000ff;
        v = (v | (v << 8)) & 0x100f00f00f00f00f;
        v = (v | (v << 4)) & 0x10c30c30c30c30c3;
        v = (v | (v << 2)) & 0x1249249249249249;
        v
    }
    spread(x) | (spread(y) << 1) | (spread(z) << 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decomp(n: usize, radius: usize, ordering: BrickOrdering) -> BrickDecomp {
        BrickDecomp::new((n, n, n), BrickDims::new(4, 4, 4), radius, ordering)
    }

    #[test]
    fn counts_and_extents() {
        let d = decomp(8, 1, BrickOrdering::Lexicographic);
        assert_eq!(d.interior_bricks(), [2, 2, 2]);
        assert_eq!(d.ghost_layers(), [1, 1, 1]);
        assert_eq!(d.shell_bricks(), [4, 4, 4]);
        assert_eq!(d.num_bricks(), 64);
        assert_eq!(d.num_interior_bricks(), 8);
        assert_eq!(d.extents(), (8, 8, 8));
    }

    #[test]
    fn ghost_layers_cover_radius() {
        // radius 4 with brick y-dim 4 -> 1 ghost layer; radius 5 -> 2.
        let d4 = BrickDecomp::new(
            (32, 8, 8),
            BrickDims::new(32, 4, 4),
            4,
            BrickOrdering::Lexicographic,
        );
        assert_eq!(d4.ghost_layers(), [1, 1, 1]);
        let d5 = BrickDecomp::new(
            (32, 8, 8),
            BrickDims::new(32, 4, 4),
            5,
            BrickOrdering::Lexicographic,
        );
        assert_eq!(d5.ghost_layers(), [1, 2, 2]);
    }

    #[test]
    fn brick_ids_are_a_permutation() {
        for ordering in [BrickOrdering::Lexicographic, BrickOrdering::Morton] {
            let d = decomp(8, 1, ordering);
            let mut seen = vec![false; d.num_bricks()];
            let shell = d.shell_bricks();
            for tz in 0..shell[2] {
                for ty in 0..shell[1] {
                    for tx in 0..shell[0] {
                        let id = d.brick_at(tx, ty, tz) as usize;
                        assert!(!seen[id]);
                        seen[id] = true;
                        assert_eq!(d.coords_of(id as u32), [tx as u32, ty as u32, tz as u32]);
                    }
                }
            }
            assert!(seen.iter().all(|s| *s));
        }
    }

    #[test]
    fn lexicographic_order_is_row_major() {
        let d = decomp(8, 1, BrickOrdering::Lexicographic);
        assert_eq!(d.brick_at(0, 0, 0), 0);
        assert_eq!(d.brick_at(1, 0, 0), 1);
        assert_eq!(d.brick_at(0, 1, 0), 4);
        assert_eq!(d.brick_at(0, 0, 1), 16);
    }

    #[test]
    fn morton_differs_but_is_complete() {
        let lex = decomp(8, 1, BrickOrdering::Lexicographic);
        let mor = decomp(8, 1, BrickOrdering::Morton);
        assert_eq!(lex.num_bricks(), mor.num_bricks());
        assert_ne!(
            (0..4).map(|t| mor.brick_at(t, 0, 0)).collect::<Vec<_>>(),
            (0..4).map(|t| lex.brick_at(t, 0, 0)).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn interior_detection() {
        let d = decomp(8, 1, BrickOrdering::Lexicographic);
        assert!(!d.is_interior(d.brick_at(0, 0, 0)));
        assert!(d.is_interior(d.brick_at(1, 1, 1)));
        assert!(d.is_interior(d.brick_at(2, 2, 2)));
        assert!(!d.is_interior(d.brick_at(3, 3, 3)));
        assert_eq!(d.interior_bricks_iter().count(), 8);
        assert!(d.interior_bricks_iter().all(|b| d.is_interior(b)));
    }

    #[test]
    fn adjacency_matches_coords() {
        let d = decomp(8, 1, BrickOrdering::Morton);
        let info = d.build_adjacency();
        let b = d.brick_at(1, 1, 1);
        assert_eq!(info.neighbor(b, 1, 0, 0), d.brick_at(2, 1, 1));
        assert_eq!(info.neighbor(b, -1, -1, -1), d.brick_at(0, 0, 0));
        // corner ghost brick has no neighbors pointing further out
        let corner = d.brick_at(0, 0, 0);
        assert_eq!(info.neighbor(corner, -1, 0, 0), NO_BRICK);
        assert_eq!(info.neighbor(corner, 0, 0, 0), corner);
    }

    #[test]
    fn locate_interior_and_halo_points() {
        let d = decomp(8, 2, BrickOrdering::Lexicographic);
        // interior origin lives in brick (1,1,1), local (0,0,0)
        let (b, off) = d.locate(0, 0, 0);
        assert_eq!(b, d.brick_at(1, 1, 1));
        assert_eq!(off, 0);
        // halo point one step left in x lives in ghost brick (0,1,1), local x=3
        let (b, off) = d.locate(-1, 0, 0);
        assert_eq!(b, d.brick_at(0, 1, 1));
        assert_eq!(off, d.dims().element_offset(3, 0, 0));
        // far corner
        let (b, off) = d.locate(7, 7, 7);
        assert_eq!(b, d.brick_at(2, 2, 2));
        assert_eq!(off, d.dims().element_offset(3, 3, 3));
    }

    #[test]
    fn morton3_interleaves_bits() {
        assert_eq!(morton3(0, 0, 0), 0);
        assert_eq!(morton3(1, 0, 0), 1);
        assert_eq!(morton3(0, 1, 0), 2);
        assert_eq!(morton3(0, 0, 1), 4);
        assert_eq!(morton3(3, 0, 0), 0b001001);
        assert_eq!(morton3(0, 3, 0), 0b010010);
    }

    #[test]
    #[should_panic(expected = "not a positive multiple")]
    fn misaligned_extent_panics() {
        let _ = BrickDecomp::new(
            (10, 8, 8),
            BrickDims::new(4, 4, 4),
            1,
            BrickOrdering::Lexicographic,
        );
    }
}
