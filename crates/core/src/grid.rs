//! Bricked grid storage: the slab of brick data plus decomposition and
//! adjacency.

use std::sync::Arc;

use brick_dsl::DenseGrid;
use rayon::prelude::*;

use crate::adjacency::BrickInfo;
use crate::decomp::{BrickDecomp, BrickOrdering};
use crate::layout::BrickDims;
use crate::nav::BrickNav;

/// A 3-D field stored in brick layout.
///
/// All bricks (interior + ghost) live in one contiguous `Vec<f64>`; brick
/// `b` occupies `data[b·volume .. (b+1)·volume]`. Decomposition and
/// adjacency are shared (`Arc`) so that the input and output grids of an
/// out-of-place sweep reuse the same metadata, as BrickLib does.
#[derive(Debug, Clone)]
pub struct BrickGrid {
    nav: BrickNav,
    data: Vec<f64>,
}

impl BrickGrid {
    /// Zero-filled bricked grid over the given decomposition.
    pub fn new(decomp: Arc<BrickDecomp>) -> Self {
        let info = Arc::new(decomp.build_adjacency());
        Self::with_metadata(decomp, info)
    }

    /// Zero-filled grid sharing existing metadata (cheap second grid for
    /// out-of-place sweeps).
    pub fn with_metadata(decomp: Arc<BrickDecomp>, info: Arc<BrickInfo>) -> Self {
        let len = decomp.num_bricks() * decomp.dims().volume();
        BrickGrid {
            nav: BrickNav::from_parts(decomp, info),
            data: vec![0.0; len],
        }
    }

    /// Build a bricked grid from a dense grid, using the dense grid's halo
    /// width as the stencil radius the ghost shell must cover.
    ///
    /// Interior extents must be multiples of the brick extents. Halo
    /// points are copied into ghost bricks; ghost-brick elements beyond
    /// the dense halo stay zero.
    pub fn from_dense(dense: &DenseGrid, dims: BrickDims) -> Self {
        Self::from_dense_ordered(dense, dims, BrickOrdering::Lexicographic)
    }

    /// [`Self::from_dense`] with an explicit brick memory ordering.
    pub fn from_dense_ordered(dense: &DenseGrid, dims: BrickDims, ordering: BrickOrdering) -> Self {
        let decomp = Arc::new(BrickDecomp::new(
            dense.extents(),
            dims,
            dense.halo().max(1),
            ordering,
        ));
        let mut grid = Self::new(decomp);
        grid.copy_from_dense(dense);
        grid
    }

    /// Overwrite brick contents from a dense grid with matching extents.
    pub fn copy_from_dense(&mut self, dense: &DenseGrid) {
        assert_eq!(self.decomp().extents(), dense.extents(), "extent mismatch");
        let dims = self.decomp().dims();
        let vol = dims.volume();
        let decomp = Arc::clone(self.decomp());
        let halo = dense.halo() as i64;
        let (nx, ny, nz) = dense.extents();
        let (nx, ny, nz) = (nx as i64, ny as i64, nz as i64);
        let ghost = decomp.ghost_layers();
        let b = [dims.bx as i64, dims.by as i64, dims.bz as i64];
        self.data
            .par_chunks_mut(vol)
            .enumerate()
            .for_each(|(id, chunk)| {
                let t = decomp.coords_of(id as u32);
                let origin = [
                    (t[0] as i64 - ghost[0] as i64) * b[0],
                    (t[1] as i64 - ghost[1] as i64) * b[1],
                    (t[2] as i64 - ghost[2] as i64) * b[2],
                ];
                for lz in 0..b[2] {
                    for ly in 0..b[1] {
                        for lx in 0..b[0] {
                            let (x, y, z) = (origin[0] + lx, origin[1] + ly, origin[2] + lz);
                            let inside = x >= -halo
                                && x < nx + halo
                                && y >= -halo
                                && y < ny + halo
                                && z >= -halo
                                && z < nz + halo;
                            let off = dims.element_offset(lx as usize, ly as usize, lz as usize);
                            chunk[off] = if inside { dense.get(x, y, z) } else { 0.0 };
                        }
                    }
                }
            });
    }

    /// Convert back to a dense grid (halo width = the ghost coverage the
    /// decomposition was built with, clamped to what the dense grid holds).
    pub fn to_dense(&self) -> DenseGrid {
        let (nx, ny, nz) = self.decomp().extents();
        let dims = self.decomp().dims();
        let ghost = self.decomp().ghost_layers();
        let halo = (ghost[0] * dims.bx)
            .min(ghost[1] * dims.by)
            .min(ghost[2] * dims.bz);
        let mut dense = DenseGrid::new(nx, ny, nz, halo);
        let h = halo as i64;
        for z in -h..(nz as i64 + h) {
            for y in -h..(ny as i64 + h) {
                for x in -h..(nx as i64 + h) {
                    dense.set(x, y, z, self.get(x, y, z));
                }
            }
        }
        dense
    }

    /// The decomposition.
    pub fn decomp(&self) -> &Arc<BrickDecomp> {
        self.nav.decomp()
    }

    /// The adjacency table.
    pub fn info(&self) -> &Arc<BrickInfo> {
        self.nav.info()
    }

    /// Brick geometry.
    pub fn dims(&self) -> BrickDims {
        self.decomp().dims()
    }

    /// Total `f64` elements in the slab (ghosts included).
    pub fn storage_len(&self) -> usize {
        self.data.len()
    }

    /// Storage overhead of the layout relative to the interior points:
    /// `(slab + adjacency bytes) / interior bytes`.
    pub fn storage_overhead(&self) -> f64 {
        let interior = self.decomp().num_interior_bricks() * self.dims().volume() * 8;
        let total = self.data.len() * 8 + self.info().metadata_bytes();
        total as f64 / interior as f64
    }

    /// Read at logical (dense-convention) coordinates.
    #[inline]
    pub fn get(&self, x: i64, y: i64, z: i64) -> f64 {
        let (b, off) = self.decomp().locate(x, y, z);
        self.data[b as usize * self.dims().volume() + off]
    }

    /// Write at logical coordinates.
    #[inline]
    pub fn set(&mut self, x: i64, y: i64, z: i64, v: f64) {
        let (b, off) = self.decomp().locate(x, y, z);
        let vol = self.dims().volume();
        self.data[b as usize * vol + off] = v;
    }

    /// Brick-relative read, navigating through the **adjacency table**
    /// exactly like a generated BrickLib kernel (`bIn[b][k][j][i]` with
    /// out-of-range indices): local coordinates may extend one brick
    /// beyond `0..bdim` on each axis.
    #[inline]
    pub fn get_rel(&self, brick: u32, lx: i64, ly: i64, lz: i64) -> f64 {
        let (b, off) = self.resolve_rel(brick, lx, ly, lz);
        self.data[b as usize * self.dims().volume() + off]
    }

    /// Brick-relative write (only ever used with in-brick coordinates by
    /// kernels, but supports neighbour writes for completeness).
    #[inline]
    pub fn set_rel(&mut self, brick: u32, lx: i64, ly: i64, lz: i64, v: f64) {
        let (b, off) = self.resolve_rel(brick, lx, ly, lz);
        let vol = self.dims().volume();
        self.data[b as usize * vol + off] = v;
    }

    /// A data-free navigator sharing this grid's metadata.
    pub fn nav(&self) -> &BrickNav {
        &self.nav
    }

    /// Resolve brick-relative coordinates to `(brick, element offset)`
    /// through the adjacency table.
    #[inline]
    pub fn resolve_rel(&self, brick: u32, lx: i64, ly: i64, lz: i64) -> (u32, usize) {
        self.nav.resolve_rel(brick, lx, ly, lz)
    }

    /// Immutable view of one brick's elements.
    pub fn brick(&self, brick: u32) -> &[f64] {
        let vol = self.dims().volume();
        &self.data[brick as usize * vol..(brick as usize + 1) * vol]
    }

    /// Mutable view of one brick's elements.
    pub fn brick_mut(&mut self, brick: u32) -> &mut [f64] {
        let vol = self.dims().volume();
        &mut self.data[brick as usize * vol..(brick as usize + 1) * vol]
    }

    /// Raw slab.
    pub fn raw(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw slab, for kernels that write multiple bricks.
    pub fn raw_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element address (in bytes, relative to the slab base) of an element
    /// offset within a brick — the address stream the GPU simulator sees.
    #[inline]
    pub fn element_addr(&self, brick: u32, offset: usize) -> u64 {
        ((brick as u64 * self.dims().volume() as u64) + offset as u64) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_dense(n: usize, halo: usize) -> DenseGrid {
        let mut d = DenseGrid::cubic(n, halo);
        d.fill_test_pattern();
        d
    }

    #[test]
    fn dense_roundtrip_lexicographic() {
        let dense = test_dense(8, 2);
        let g = BrickGrid::from_dense(&dense, BrickDims::new(4, 4, 4));
        let back = g.to_dense();
        assert_eq!(back.max_abs_diff(&dense), 0.0);
        // halo points survive the round trip too
        assert_eq!(back.get(-2, -1, 0), dense.get(-2, -1, 0));
        assert_eq!(back.get(9, 9, 9), dense.get(9, 9, 9));
    }

    #[test]
    fn dense_roundtrip_morton() {
        let dense = test_dense(8, 1);
        let g =
            BrickGrid::from_dense_ordered(&dense, BrickDims::new(4, 4, 4), BrickOrdering::Morton);
        assert_eq!(g.to_dense().max_abs_diff(&dense), 0.0);
    }

    #[test]
    fn logical_get_matches_dense_everywhere() {
        let dense = test_dense(8, 2);
        let g = BrickGrid::from_dense(&dense, BrickDims::new(4, 4, 4));
        for z in -2..10 {
            for y in -2..10 {
                for x in -2..10 {
                    assert_eq!(g.get(x, y, z), dense.get(x, y, z), "({x},{y},{z})");
                }
            }
        }
    }

    #[test]
    fn rel_access_crosses_bricks_via_adjacency() {
        let dense = test_dense(8, 2);
        let g = BrickGrid::from_dense(&dense, BrickDims::new(4, 4, 4));
        let (brick, _) = g.decomp().locate(0, 0, 0);
        // in-brick
        assert_eq!(g.get_rel(brick, 1, 2, 3), dense.get(1, 2, 3));
        // cross-brick in +x, -y, +z
        assert_eq!(g.get_rel(brick, 5, 0, 0), dense.get(5, 0, 0));
        assert_eq!(g.get_rel(brick, 0, -2, 0), dense.get(0, -2, 0));
        assert_eq!(g.get_rel(brick, 0, 0, 4), dense.get(0, 0, 4));
        // diagonal corner neighbour
        assert_eq!(g.get_rel(brick, -1, -1, -1), dense.get(-1, -1, -1));
    }

    #[test]
    fn set_rel_then_get() {
        let dense = test_dense(8, 1);
        let mut g = BrickGrid::from_dense(&dense, BrickDims::new(4, 4, 4));
        let (brick, _) = g.decomp().locate(4, 4, 4);
        g.set_rel(brick, 0, 0, 0, 42.0);
        assert_eq!(g.get(4, 4, 4), 42.0);
        g.set_rel(brick, -1, 0, 0, 7.0);
        assert_eq!(g.get(3, 4, 4), 7.0);
    }

    #[test]
    fn shared_metadata_between_grids() {
        let dense = test_dense(8, 1);
        let a = BrickGrid::from_dense(&dense, BrickDims::new(4, 4, 4));
        let b = BrickGrid::with_metadata(Arc::clone(a.decomp()), Arc::clone(a.info()));
        assert_eq!(b.storage_len(), a.storage_len());
        assert!(b.raw().iter().all(|v| *v == 0.0));
    }

    #[test]
    fn element_addr_is_brick_contiguous() {
        let dense = test_dense(8, 1);
        let g = BrickGrid::from_dense(&dense, BrickDims::new(4, 4, 4));
        let vol = g.dims().volume() as u64;
        assert_eq!(g.element_addr(0, 0), 0);
        assert_eq!(g.element_addr(0, 5), 40);
        assert_eq!(g.element_addr(3, 0), 3 * vol * 8);
    }

    #[test]
    fn storage_overhead_reflects_ghost_shell() {
        let dense = test_dense(8, 1);
        let g = BrickGrid::from_dense(&dense, BrickDims::new(4, 4, 4));
        // 4^3 shell bricks vs 2^3 interior = 8x data overhead plus metadata
        assert!(g.storage_overhead() > 8.0);
        let big = test_dense(16, 1);
        let g2 = BrickGrid::from_dense(&big, BrickDims::new(4, 4, 4));
        assert!(g2.storage_overhead() < g.storage_overhead());
    }

    #[test]
    fn ghost_elements_beyond_halo_are_zero() {
        let dense = test_dense(8, 1);
        let g = BrickGrid::from_dense(&dense, BrickDims::new(4, 4, 4));
        // ghost brick corner element maps to logical (-4,-4,-4), outside halo 1
        let corner = g.decomp().brick_at(0, 0, 0);
        assert_eq!(g.brick(corner)[0], 0.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "exceeds one brick")]
    fn rel_access_beyond_one_brick_panics_in_debug() {
        let dense = test_dense(8, 1);
        let g = BrickGrid::from_dense(&dense, BrickDims::new(4, 4, 4));
        let (brick, _) = g.decomp().locate(0, 0, 0);
        let _ = g.get_rel(brick, 8, 0, 0);
    }
}
