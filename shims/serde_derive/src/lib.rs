//! `#[derive(Serialize, Deserialize)]` for the workspace serde shim.
//!
//! Parses the derive input token stream directly (no syn/quote — the
//! build container has no network access to fetch them) and emits impls
//! of the shim's `to_value`/`from_value` traits. Supported shapes are
//! exactly what the workspace uses:
//!
//! * structs with named fields,
//! * enums whose variants are unit or have named fields,
//! * no generic parameters, no `#[serde(...)]` attributes.
//!
//! Anything else panics at expansion time with a clear message, which is
//! the desired failure mode for a shim.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<(String, Vec<Field>)>,
    },
}

fn skip_attrs_and_vis(it: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                // the [...] group of the attribute
                match it.next() {
                    Some(TokenTree::Group(_)) => {}
                    other => panic!("serde_derive shim: malformed attribute: {other:?}"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                it.next();
                // optional (crate)/(super)/(in ...) restriction
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        it.next();
                    }
                }
            }
            _ => return,
        }
    }
}

/// Skip tokens up to (and including) the next top-level `,`, tracking
/// `<...>` nesting so commas inside generic arguments don't terminate
/// the field. Returns false when the stream ended.
fn skip_type(it: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> bool {
    let mut depth = 0i32;
    for tok in it.by_ref() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return true,
                _ => {}
            }
        }
    }
    false
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut it = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut it);
        let name = match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde_derive shim: expected field name, got {other:?}"),
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!(
                "serde_derive shim: expected `:` after field `{name}`, got {other:?} \
                 (tuple structs are not supported)"
            ),
        }
        fields.push(Field { name });
        if !skip_type(&mut it) {
            break;
        }
    }
    fields
}

fn parse_enum_variants(stream: TokenStream) -> Vec<(String, Vec<Field>)> {
    let mut it = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut it);
        let name = match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde_derive shim: expected variant name, got {other:?}"),
        };
        let fields = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = match it.next() {
                    Some(TokenTree::Group(g)) => g,
                    _ => unreachable!(),
                };
                parse_named_fields(g.stream())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => panic!(
                "serde_derive shim: tuple variant `{name}` is not supported \
                 (use named fields)"
            ),
            _ => Vec::new(),
        };
        variants.push((name, fields));
        // skip an optional discriminant and the trailing comma
        let mut depth = 0i32;
        loop {
            match it.next() {
                None => return variants,
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
            }
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut it = input.into_iter().peekable();
    let kind = loop {
        skip_attrs_and_vis(&mut it);
        match it.next() {
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                // `union`, or modifiers we don't care about
                if s == "union" {
                    panic!("serde_derive shim: unions are not supported");
                }
            }
            Some(_) => {}
            None => panic!("serde_derive shim: no struct/enum in derive input"),
        }
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic type `{name}` is not supported");
        }
    }
    let body = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            panic!("serde_derive shim: tuple struct `{name}` is not supported")
        }
        other => panic!("serde_derive shim: expected {{...}} body for `{name}`, got {other:?}"),
    };
    if kind == "struct" {
        Item::Struct {
            name,
            fields: parse_named_fields(body),
        }
    } else {
        Item::Enum {
            name,
            variants: parse_enum_variants(body),
        }
    }
}

/// Derive the shim's `Serialize` (a `to_value(&self) -> Value` impl).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__obj.push((::std::string::String::from(\"{0}\"), \
                         ::serde::Serialize::to_value(&self.{0})));\n",
                        f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut __obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> \
                             = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Obj(__obj)\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, fields)| {
                    if fields.is_empty() {
                        format!(
                            "{name}::{v} => ::serde::Value::Str(\
                             ::std::string::String::from(\"{v}\")),\n"
                        )
                    } else {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let pushes: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "__inner.push((::std::string::String::from(\"{0}\"), \
                                     ::serde::Serialize::to_value({0})));\n",
                                    f.name
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => {{\n\
                                 let mut __inner: ::std::vec::Vec<(::std::string::String, \
                                     ::serde::Value)> = ::std::vec::Vec::new();\n\
                                 {pushes}\
                                 ::serde::Value::Obj(vec![(\
                                     ::std::string::String::from(\"{v}\"), \
                                     ::serde::Value::Obj(__inner))])\n\
                             }}\n",
                            binds = binds.join(", "),
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}\n}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde_derive shim: generated impl must parse")
}

/// Derive the shim's `Deserialize` (a `from_value(&Value)` impl).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{0}: ::serde::Deserialize::from_value(__v.field(\"{0}\")?)?,\n",
                        f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, fields)| fields.is_empty())
                .map(|(v, _)| {
                    format!("\"{v}\" => return ::std::result::Result::Ok({name}::{v}),\n")
                })
                .collect();
            let struct_arms: String = variants
                .iter()
                .filter(|(_, fields)| !fields.is_empty())
                .map(|(v, fields)| {
                    let inits: String = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{0}: ::serde::Deserialize::from_value(\
                                 __inner.field(\"{0}\")?)?,\n",
                                f.name
                            )
                        })
                        .collect();
                    format!(
                        "if let ::std::option::Option::Some(__inner) = __v.variant(\"{v}\") {{\n\
                             return ::std::result::Result::Ok({name}::{v} {{\n{inits}}});\n\
                         }}\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
                             match __s {{\n{unit_arms}_ => {{}}\n}}\n\
                         }}\n\
                         {struct_arms}\
                         ::std::result::Result::Err(::serde::Error::msg(format!(\
                             \"no variant of {name} matches {{:?}}\", __v)))\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde_derive shim: generated impl must parse")
}
