//! Offline stand-in for `proptest` covering the subset this workspace's
//! property tests use: range and tuple strategies, `collection::vec`,
//! `any::<bool>()`, `prop_map`, the `proptest!` block macro and the
//! `prop_assert!`/`prop_assert_eq!` assertions.
//!
//! Cases are generated from a fixed per-case seed (splitmix64), so runs
//! are fully deterministic: a failing case fails every time, with its
//! case index in the panic message. There is no shrinking.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic test RNG (splitmix64).
pub struct TestRng(u64);

impl TestRng {
    /// Seeded construction; the `proptest!` macro derives one seed per case.
    pub fn new(seed: u64) -> TestRng {
        TestRng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u64;
                assert!(span > 0, "empty range strategy");
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

// u64 separately: the i128 arithmetic above holds for it too, but keep the
// span computation overflow-safe at the extremes.
impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        let span = self.end - self.start;
        assert!(span > 0, "empty range strategy");
        self.start + rng.below(span)
    }
}

impl Strategy for RangeInclusive<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        if lo == 0 && hi == u64::MAX {
            return rng.next_u64();
        }
        lo + rng.below(hi - lo + 1)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// Types with a canonical `any::<T>()` strategy.
pub trait ArbitraryValue {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t { rng.next_u64() as $t }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

/// Constant strategy.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    //! Collection strategies.
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Define deterministic property tests over strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{@cfg ($cfg); $($rest)*}
    };
    (@cfg ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            for case in 0..config.cases {
                // one fixed seed per (test, case): deterministic replay
                let mut rng = $crate::TestRng::new(
                    0xB5AD4ECEDA1CE2A9u64 ^ (case as u64).wrapping_mul(0x2545F4914F6CDD1D));
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("proptest case {case}/{}: {e}", config.cases);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!{@cfg ($crate::ProptestConfig::default()); $($rest)*}
    };
}

/// `assert!` that reports through the enclosing `proptest!` case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// `assert_eq!` that reports through the enclosing `proptest!` case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`", left, right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err(
                format!("`{:?}` != `{:?}`: {}", left, right, format!($($fmt)*)));
        }
    }};
}

/// `assert_ne!` that reports through the enclosing `proptest!` case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let x = Strategy::generate(&(-3i32..=3), &mut rng);
            assert!((-3..=3).contains(&x));
            let y = Strategy::generate(&(1usize..12), &mut rng);
            assert!((1..12).contains(&y));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn vec_strategy_respects_size(v in crate::collection::vec(0u64..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5, "len {}", v.len());
            for x in v {
                prop_assert!(x < 10);
            }
        }

        #[test]
        fn map_applies(n in (1u32..5).prop_map(|x| x * 100)) {
            prop_assert!((100..500).contains(&n));
            prop_assert_eq!(n % 100, 0);
        }
    }
}
