//! Offline stand-in for `serde`, API-compatible with the subset this
//! workspace uses: `#[derive(Serialize, Deserialize)]` on plain structs
//! and enums (unit or struct variants), plus `T: Serialize` bounds.
//!
//! Unlike real serde's visitor architecture, serialization goes through
//! an owned JSON-like [`Value`] tree — `serde_json` (also shimmed) turns
//! that into text and back. The container never fetches crates from the
//! network, so the workspace carries these shims instead (see
//! `shims/README.md`).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON-like data tree: the interchange format between `Serialize`,
/// `Deserialize` and the `serde_json` shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number (non-finite values print as `null`).
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object, insertion-ordered.
    Obj(Vec<(String, Value)>),
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// Build an error from any displayable message.
    pub fn msg(m: impl fmt::Display) -> Error {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl Value {
    /// Object field lookup (None for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element lookup.
    pub fn get_index(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Arr(items) => items.get(i),
            _ => None,
        }
    }

    /// Object field lookup that errors with the field name (derive helper).
    pub fn field(&self, key: &str) -> Result<&Value, Error> {
        self.get(key)
            .ok_or_else(|| Error(format!("missing field `{key}`")))
    }

    /// Payload of an externally-tagged enum variant: `{"Name": {...}}`.
    pub fn variant(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) if fields.len() == 1 && fields[0].0 == name => Some(&fields[0].1),
            _ => None,
        }
    }

    /// String payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload widened to f64, if any.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(n) => Some(n as f64),
            Value::I64(n) => Some(n as f64),
            Value::F64(n) => Some(n),
            _ => None,
        }
    }

    /// Non-negative integer payload, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) if n >= 0 => Some(n as u64),
            Value::F64(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => Some(n as u64),
            _ => None,
        }
    }

    /// Signed integer payload, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(n) => Some(n),
            Value::U64(n) if n <= i64::MAX as u64 => Some(n as i64),
            Value::F64(n) if n.fract() == 0.0 && n.abs() <= i64::MAX as f64 => Some(n as i64),
            _ => None,
        }
    }

    /// Boolean payload, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Array payload, if any.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Object payload, if any.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.get_index(i).unwrap_or(&NULL)
    }
}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// Convert to the interchange tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstruct from the interchange tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls --------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error(format!(
                    "expected unsigned integer, got {v:?}")))?;
                <$t>::try_from(n).map_err(Error::msg)
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error(format!(
                    "expected integer, got {v:?}")))?;
                <$t>::try_from(n).map_err(Error::msg)
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            // non-finite floats serialize as null (as real serde_json does)
            return Ok(f64::NAN);
        }
        v.as_f64()
            .ok_or_else(|| Error(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|n| n as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error(format!("expected bool, got {v:?}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error(format!("expected string, got {v:?}")))
    }
}

/// `&'static str` deserializes through a process-wide intern table: each
/// distinct string is leaked once and reused afterwards, so repeated
/// round-trips of e.g. architecture names don't grow memory.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        use std::collections::BTreeMap;
        use std::sync::{Mutex, OnceLock};
        static INTERN: OnceLock<Mutex<BTreeMap<String, &'static str>>> = OnceLock::new();
        let s = v
            .as_str()
            .ok_or_else(|| Error(format!("expected string, got {v:?}")))?;
        let mut table = INTERN
            .get_or_init(|| Mutex::new(BTreeMap::new()))
            .lock()
            .unwrap();
        if let Some(&interned) = table.get(s) {
            return Ok(interned);
        }
        let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
        table.insert(s.to_string(), leaked);
        Ok(leaked)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error(format!("expected char, got {v:?}")))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error(format!("expected single char, got {s:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error(format!("expected array of {N} elements, got {n}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array()
                    .ok_or_else(|| Error(format!("expected tuple array, got {v:?}")))?;
                Ok(($($t::from_value(
                    a.get($idx).ok_or_else(|| Error(format!(
                        "tuple too short at index {}", $idx)))?)?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error(format!("expected object, got {v:?}")))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<_> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Obj(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error(format!("expected object, got {v:?}")))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
