//! Offline stand-in for `criterion` covering the API subset this
//! workspace's benches use: benchmark groups with `sample_size` /
//! `measurement_time` / `throughput`, `bench_function` /
//! `bench_with_input`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple: each sample times a batch of
//! iterations sized so one sample lasts roughly `measurement_time /
//! sample_size`, and the reported figure is the median sample. No HTML
//! reports, no statistics beyond median and min/max.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier, `function/parameter` style.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identifier from a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to the closure of `bench_function`; runs and times the payload.
pub struct Bencher {
    samples: usize,
    sample_target: Duration,
    /// Median seconds per iteration, set by [`Bencher::iter`].
    median_s: f64,
    min_s: f64,
    max_s: f64,
}

impl Bencher {
    /// Time `f`, storing median/min/max seconds per iteration.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // calibrate: how many iterations fit one sample target
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let per_sample =
            (self.sample_target.as_secs_f64() / once.as_secs_f64()).clamp(1.0, 1e7) as u64;

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            per_iter.push(t.elapsed().as_secs_f64() / per_sample as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.median_s = per_iter[per_iter.len() / 2];
        self.min_s = per_iter[0];
        self.max_s = *per_iter.last().unwrap();
    }
}

fn human_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Total time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark. The shim's calibration pass already
    /// warms the code under test, so this only records intent.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            sample_target: self.measurement_time / self.sample_size as u32,
            median_s: f64::NAN,
            min_s: f64::NAN,
            max_s: f64::NAN,
        };
        f(&mut b);
        let mut line = format!(
            "{}/{}  time: [{} .. {} .. {}]",
            self.name,
            id.0,
            human_time(b.min_s),
            human_time(b.median_s),
            human_time(b.max_s),
        );
        match self.throughput {
            Some(Throughput::Elements(n)) => {
                line += &format!("  thrpt: {:.3} Melem/s", n as f64 / b.median_s / 1e6);
            }
            Some(Throughput::Bytes(n)) => {
                line += &format!(
                    "  thrpt: {:.3} MiB/s",
                    n as f64 / b.median_s / (1 << 20) as f64
                );
            }
            None => {}
        }
        println!("{line}");
        self
    }

    /// Run one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            throughput: None,
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        self.benchmark_group(id.0.clone()).bench_function("", f);
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        #[allow(missing_docs)]
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
