//! Offline stand-in for `rayon` covering the API subset this workspace
//! uses: `par_iter_mut` / `par_chunks_mut` on slices followed by
//! `enumerate` / `map` / `for_each` / `collect`, plus
//! [`ThreadPoolBuilder`] / [`ThreadPool::install`] for callers that need
//! an explicit worker count (the sweep scheduler's `--jobs` knob).
//!
//! Work items are materialised eagerly and evaluated on `std::thread`
//! scoped workers pulling from an atomic cursor (dynamic scheduling, like
//! rayon's work stealing at this granularity). `map` is eager — it
//! evaluates in parallel immediately and yields an ordered result — which
//! is observationally equivalent for the pipelines here.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::ParallelSliceMut;
}

thread_local! {
    /// Worker count installed by [`ThreadPool::install`] on this thread;
    /// `None` means "use all available parallelism".
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Builder mirroring `rayon::ThreadPoolBuilder` for the one option this
/// workspace needs: the worker-thread count.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with rayon's defaults (`num_threads == 0` = automatic).
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Use exactly `n` worker threads; `0` restores the automatic choice.
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = n;
        self
    }

    /// Build the pool. Infallible here, but kept `Result` for signature
    /// compatibility with real rayon.
    pub fn build(self) -> Result<ThreadPool, std::convert::Infallible> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A "pool" that scopes a worker-count override: parallel iterators
/// evaluated inside [`ThreadPool::install`] use the pool's thread count.
/// (Workers are still scoped per call — this shim has no persistent
/// threads — which preserves rayon's observable ordering semantics.)
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The worker count parallel calls under [`install`](Self::install)
    /// will use (0 = automatic).
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Run `op` with this pool's thread count installed for any parallel
    /// iterators it evaluates on the calling thread.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.with(|c| {
            c.replace(match self.num_threads {
                0 => None,
                n => Some(n),
            })
        });
        // restore on unwind too, so a panicking op doesn't leak the
        // override into later work on this thread
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                let prev = self.0;
                POOL_THREADS.with(|c| c.set(prev));
            }
        }
        let _restore = Restore(prev);
        op()
    }
}

/// Evaluate `f` over `items` on scoped worker threads; results keep the
/// input order.
fn par_eval<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    let threads = POOL_THREADS
        .with(|c| c.get())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
        .min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().unwrap().take().expect("item taken once");
                let r = f(item);
                *out[i].lock().unwrap() = Some(r);
            });
        }
    });
    out.into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker wrote result"))
        .collect()
}

/// A materialised parallel iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Pair each item with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Parallel map (eager); result order matches input order.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParIter<R> {
        ParIter {
            items: par_eval(self.items, f),
        }
    }

    /// Run `f` over every item in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        par_eval(self.items, f);
    }

    /// Collect the (already ordered) items.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Parallel mutable iteration over slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel counterpart of `iter_mut`.
    fn par_iter_mut(&mut self) -> ParIter<&mut T>;
    /// Parallel counterpart of `chunks_mut`.
    fn par_chunks_mut(&mut self, chunk: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<&mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }

    fn par_chunks_mut(&mut self, chunk: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(chunk).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunks_for_each_touches_everything() {
        let mut v = vec![0u64; 10_000];
        v.par_chunks_mut(17).enumerate().for_each(|(i, chunk)| {
            for x in chunk.iter_mut() {
                *x = i as u64 + 1;
            }
        });
        assert!(v.iter().all(|&x| x > 0));
        assert_eq!(v[0], 1);
        assert_eq!(v[17], 2);
    }

    #[test]
    fn install_scopes_the_worker_count() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        pool.install(|| {
            let mut v = [0u8; 64];
            v.par_iter_mut().for_each(|x| {
                ids.lock().unwrap().insert(std::thread::current().id());
                *x = 1;
            });
        });
        // at most 2 worker threads touched the items
        assert!(ids.lock().unwrap().len() <= 2);
        // the override does not leak out of install()
        assert_eq!(crate::POOL_THREADS.with(|c| c.get()), None);
    }

    #[test]
    fn single_threaded_pool_matches_serial() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let mut v: Vec<u32> = (0..100).collect();
        let out: Vec<u32> = pool.install(|| v.par_iter_mut().map(|x| *x * 3).collect());
        assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn map_collect_preserves_order() {
        let mut v: Vec<u32> = (0..1000).collect();
        let out: Vec<u64> = v
            .par_iter_mut()
            .enumerate()
            .map(|(i, x)| (*x as u64) * 2 + i as u64)
            .collect();
        for (i, &o) in out.iter().enumerate() {
            assert_eq!(o, i as u64 * 3);
        }
    }
}
