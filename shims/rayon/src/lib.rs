//! Offline stand-in for `rayon` covering the API subset this workspace
//! uses: `par_iter_mut` / `par_chunks_mut` on slices followed by
//! `enumerate` / `map` / `for_each` / `collect`.
//!
//! Work items are materialised eagerly and evaluated on `std::thread`
//! scoped workers pulling from an atomic cursor (dynamic scheduling, like
//! rayon's work stealing at this granularity). `map` is eager — it
//! evaluates in parallel immediately and yields an ordered result — which
//! is observationally equivalent for the pipelines here.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::ParallelSliceMut;
}

/// Evaluate `f` over `items` on scoped worker threads; results keep the
/// input order.
fn par_eval<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().unwrap().take().expect("item taken once");
                let r = f(item);
                *out[i].lock().unwrap() = Some(r);
            });
        }
    });
    out.into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker wrote result"))
        .collect()
}

/// A materialised parallel iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Pair each item with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Parallel map (eager); result order matches input order.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParIter<R> {
        ParIter {
            items: par_eval(self.items, f),
        }
    }

    /// Run `f` over every item in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        par_eval(self.items, f);
    }

    /// Collect the (already ordered) items.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Parallel mutable iteration over slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel counterpart of `iter_mut`.
    fn par_iter_mut(&mut self) -> ParIter<&mut T>;
    /// Parallel counterpart of `chunks_mut`.
    fn par_chunks_mut(&mut self, chunk: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<&mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }

    fn par_chunks_mut(&mut self, chunk: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(chunk).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunks_for_each_touches_everything() {
        let mut v = vec![0u64; 10_000];
        v.par_chunks_mut(17).enumerate().for_each(|(i, chunk)| {
            for x in chunk.iter_mut() {
                *x = i as u64 + 1;
            }
        });
        assert!(v.iter().all(|&x| x > 0));
        assert_eq!(v[0], 1);
        assert_eq!(v[17], 2);
    }

    #[test]
    fn map_collect_preserves_order() {
        let mut v: Vec<u32> = (0..1000).collect();
        let out: Vec<u64> = v
            .par_iter_mut()
            .enumerate()
            .map(|(i, x)| (*x as u64) * 2 + i as u64)
            .collect();
        for (i, &o) in out.iter().enumerate() {
            assert_eq!(o, i as u64 * 3);
        }
    }
}
