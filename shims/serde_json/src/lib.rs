//! Offline stand-in for `serde_json` over the workspace serde shim's
//! [`Value`] tree: a recursive-descent JSON parser and a compact/pretty
//! printer. Covers `to_string[_pretty]`, `to_value`, `from_str`,
//! `from_value` and `Value` indexing — the API surface this workspace
//! uses.

pub use serde::{Error, Value};

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

type Result<T> = std::result::Result<T, Error>;

/// Serialize to the [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(value.to_value())
}

/// Reconstruct a `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    T::from_value(value)
}

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to pretty-printed JSON text (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text and reconstruct a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    T::from_value(&parse(s)?)
}

/// Parse JSON text into a [`Value`] tree.
pub fn parse(s: &str) -> Result<Value> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing characters at byte {pos}")));
    }
    Ok(v)
}

// ---- printer ----------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(n) => {
            if n.is_finite() {
                // `{}` on f64 is the shortest round-trip representation
                let _ = write!(out, "{n}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser -----------------------------------------------------------

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<()> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(Error(format!(
            "expected `{}` at byte {} of JSON input",
            c as char, *pos
        )))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error("unexpected end of JSON input".into())),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(Error(format!("expected `,` or `]` at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(Error(format!("expected `,` or `}}` at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(Error(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        let start = *pos;
        while *pos < b.len() && b[*pos] != b'"' && b[*pos] != b'\\' {
            *pos += 1;
        }
        out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(Error::msg)?);
        match b.get(*pos) {
            None => return Err(Error("unterminated string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hi = parse_hex4(b, *pos + 1)?;
                        *pos += 4;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // surrogate pair: expect \uXXXX low half
                            if b.get(*pos + 1) == Some(&b'\\') && b.get(*pos + 2) == Some(&b'u') {
                                let lo = parse_hex4(b, *pos + 3)?;
                                *pos += 6;
                                let code = 0x10000
                                    + ((hi - 0xD800) << 10)
                                    + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(code)
                            } else {
                                None
                            }
                        } else {
                            char::from_u32(hi)
                        };
                        out.push(
                            c.ok_or_else(|| Error(format!("invalid \\u escape at byte {pos}")))?,
                        );
                    }
                    _ => return Err(Error(format!("invalid escape at byte {pos}"))),
                }
                *pos += 1;
            }
            _ => unreachable!(),
        }
    }
}

fn parse_hex4(b: &[u8], pos: usize) -> Result<u32> {
    let s = b
        .get(pos..pos + 4)
        .and_then(|s| std::str::from_utf8(s).ok())
        .ok_or_else(|| Error(format!("truncated \\u escape at byte {pos}")))?;
    u32::from_str_radix(s, 16).map_err(Error::msg)
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(Error::msg)?;
    if text.is_empty() || text == "-" {
        return Err(Error(format!("invalid number at byte {start}")));
    }
    if !float {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::U64(n));
        }
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Value::I64(n));
        }
    }
    text.parse::<f64>()
        .map(Value::F64)
        .map_err(|e| Error(format!("invalid number `{text}`: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "42", "-7", "1.5", "\"hi\\n\""] {
            let v = parse(text).unwrap();
            let mut out = String::new();
            write_value(&mut out, &v, None, 0);
            assert_eq!(out, text);
        }
    }

    #[test]
    fn roundtrip_structures() {
        let text = r#"{"a":[1,2.5,{"b":"x"}],"c":null}"#;
        let v = parse(text).unwrap();
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert_eq!(v["a"][2]["b"].as_str(), Some("x"));
        let mut out = String::new();
        write_value(&mut out, &v, None, 0);
        assert_eq!(out, text);
    }

    #[test]
    fn f64_shortest_roundtrip() {
        let x = 0.1f64 + 0.2;
        let s = to_string(&x).unwrap();
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn trailing_junk_rejected() {
        assert!(parse("1 2").is_err());
        assert!(parse("").is_err());
    }
}
