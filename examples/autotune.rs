//! Autotune brick shape, memory ordering and codegen strategy for a
//! stencil on each simulated GPU — the search behind BrickLib's
//! portability claim (§3) and the "change the size of the brick" speed-up
//! path of §5.2.2.
//!
//! ```text
//! cargo run --release --example autotune             # 13pt star
//! cargo run --release --example autotune -- cube 2
//! ```

use bricks_repro::dsl::shape::StencilShape;
use bricks_repro::gpu_sim::{GpuArch, ProgModel};
use bricks_repro::tuner::{autotune, TuningSpace};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let shape = match args.as_slice() {
        [] => StencilShape::star(2),
        [kind, radius] => {
            let r: u32 = radius.parse().expect("radius");
            match kind.as_str() {
                "star" => StencilShape::star(r),
                "cube" => StencilShape::cube(r),
                other => panic!("unknown shape {other}"),
            }
        }
        _ => panic!("usage: autotune [star|cube RADIUS]"),
    };
    let n = 128;
    let space = TuningSpace::default();
    println!(
        "autotuning {shape} over {} candidates ({n}^3 domain)\n",
        space.len()
    );

    for (arch, model) in [
        (GpuArch::a100(), ProgModel::Cuda),
        (GpuArch::mi250x_gcd(), ProgModel::Hip),
        (GpuArch::pvc_stack(), ProgModel::Sycl),
    ] {
        let result = autotune(&shape, &arch, model, n, &space).expect("tunable");
        let best = result.best();
        println!("{} / {model}:", arch.kind);
        println!(
            "  best     : {}  ->  {:.0} GFLOP/s",
            best.params, best.gflops
        );
        for r in result.ranked.iter().take(4).skip(1) {
            println!("  runner-up: {}  ->  {:.0} GFLOP/s", r.params, r.gflops);
        }
        println!(
            "  gain over the paper's fixed 4x4xW gather default: {:.2}x",
            result.gain_over_paper()
        );
        println!(
            "  spread best/worst: {:.2}x over {} feasible points ({} skipped)\n",
            result.spread(),
            result.evaluated,
            result.skipped
        );
    }
}
