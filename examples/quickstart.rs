//! Quickstart: define a stencil in the DSL, generate brick vector code,
//! run it on the VM, and validate against the scalar reference.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bricks_repro::codegen::{emit_vector, generate, CodegenOptions, Dialect, LayoutKind};
use bricks_repro::core::{BrickDims, BrickGrid};
use bricks_repro::dsl::{reference, ConstRef, DenseGrid, GridRef, Stencil};
use bricks_repro::vm::run_vector_brick;
use std::sync::Arc;

fn main() {
    // 1. Express a 7-point star stencil in the DSL (paper Fig. 1 style).
    let input = GridRef::new("in");
    let a0 = ConstRef::new("MPI_B0");
    let a1 = ConstRef::new("MPI_B1");
    let calc = a0 * input.center()
        + a1.clone() * input.offset(1, 0, 0)
        + a1.clone() * input.offset(-1, 0, 0)
        + a1.clone() * input.offset(0, 1, 0)
        + a1.clone() * input.offset(0, -1, 0)
        + a1.clone() * input.offset(0, 0, 1)
        + a1.clone() * input.offset(0, 0, -1);
    let stencil = Stencil::assign("out", calc).expect("linear stencil");
    println!("stencil:\n{stencil}");

    // 2. Bind coefficients (a discrete Laplacian-like smoother).
    let bindings = bricks_repro::dsl::CoeffBindings::new()
        .bind("MPI_B0", 0.4)
        .bind("MPI_B1", 0.1);

    // 3. Generate vector code for an A100-shaped brick (4x4x32).
    let kernel = generate(
        &stencil,
        &bindings,
        LayoutKind::Brick,
        32,
        CodegenOptions::default(),
    )
    .expect("codegen");
    println!(
        "generated {}: {} vector ops, {} registers/thread, strategy {}",
        kernel.name,
        kernel.stats.total_instructions(),
        kernel.num_regs,
        kernel.strategy
    );
    println!("\nfirst lines of the CUDA rendering:");
    for line in emit_vector(&kernel, Dialect::Cuda).lines().take(12) {
        println!("  {line}");
    }

    // 4. Build a bricked grid from dense data and run the kernel.
    let n = 64;
    let mut dense = DenseGrid::cubic(n, 1);
    dense.fill_with(|x, y, z| (0.05 * (x + 2 * y + 3 * z) as f64).sin());
    let input_grid = BrickGrid::from_dense(&dense, BrickDims::for_simd_width(32));
    let mut output_grid = BrickGrid::with_metadata(
        Arc::clone(input_grid.decomp()),
        Arc::clone(input_grid.info()),
    );
    run_vector_brick(&kernel, &input_grid, &mut output_grid).expect("run");

    // 5. Validate against the scalar reference.
    let mut expect = DenseGrid::cubic(n, 1);
    reference::apply(&stencil, &bindings, &dense, &mut expect).expect("reference");
    let diff = output_grid.to_dense().max_rel_diff(&expect);
    println!("\nmax relative difference vs scalar reference: {diff:.2e}");
    assert!(diff < 1e-12);
    println!("quickstart OK: generated brick kernel matches the reference.");
}
