//! A miniature of the paper's study: one stencil across all three
//! simulated GPUs and their programming models, scored with the Roofline
//! and Pennycook's performance-portability metric.
//!
//! ```text
//! cargo run --release --example portability_study            # 13pt star
//! cargo run --release --example portability_study -- cube 2  # 125pt
//! ```

use bricks_repro::dsl::shape::StencilShape;
use bricks_repro::dsl::StencilAnalysis;
use bricks_repro::experiments::runner::{build_geometry, build_spec};
use bricks_repro::experiments::KernelConfig;
use bricks_repro::gpu_sim::{simulate, GpuArch, ProgModel};
use bricks_repro::metrics::pennycook_p;
use bricks_repro::roofline::measure;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let shape = match args.as_slice() {
        [] => StencilShape::star(2),
        [kind, radius] => {
            let r: u32 = radius.parse().expect("radius must be a number");
            match kind.as_str() {
                "star" => StencilShape::star(r),
                "cube" => StencilShape::cube(r),
                other => panic!("unknown shape {other} (star|cube)"),
            }
        }
        _ => panic!("usage: portability_study [star|cube RADIUS]"),
    };
    let analysis = StencilAnalysis::of_shape(&shape);
    println!(
        "stencil: {} ({} points, {} coefficient classes, theoretical AI {:.3})",
        shape, analysis.points, analysis.classes, analysis.theoretical_ai
    );

    let n = 256;
    println!("domain: {n}^3 doubles, out of place\n");
    println!(
        "{:<28} {:>8} {:>8} {:>7} {:>9} {:>8}",
        "platform", "GFLOP/s", "AI", "%roofl", "%theo-AI", "DRAM GB"
    );

    let mut efficiencies = Vec::new();
    for (arch, model) in [
        (GpuArch::a100(), ProgModel::Cuda),
        (GpuArch::a100(), ProgModel::Sycl),
        (GpuArch::mi250x_gcd(), ProgModel::Hip),
        (GpuArch::mi250x_gcd(), ProgModel::Sycl),
        (GpuArch::pvc_stack(), ProgModel::Sycl),
    ] {
        let spec = build_spec(&shape, KernelConfig::BricksCodegen, arch.simd_width);
        let geom = build_geometry(
            KernelConfig::BricksCodegen.layout(),
            n,
            arch.simd_width,
            shape.radius as usize,
        );
        let rl = measure(&arch, model).expect("supported pair");
        let sim =
            simulate(&spec, &geom, &arch, model, analysis.flops_per_point).expect("supported pair");
        let frac = rl.fraction(sim.gflops, sim.ai);
        let frac_ai = sim.ai / analysis.theoretical_ai;
        println!(
            "{:<28} {:>8.0} {:>8.3} {:>6.0}% {:>8.0}% {:>8.2}",
            format!("{} {}", sim.gpu, model),
            sim.gflops,
            sim.ai,
            frac * 100.0,
            frac_ai * 100.0,
            sim.mem.dram_bytes as f64 / 1e9,
        );
        efficiencies.push(Some(frac));
    }

    let p = pennycook_p(&efficiencies);
    println!(
        "\nPennycook P (fraction of Roofline, bricks codegen): {:.0}%",
        p * 100.0
    );
}
