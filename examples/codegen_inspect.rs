//! Inspect what the code generator produces: the Fig. 1 DSL listing, the
//! Fig. 2 scalar kernels in all three dialects, and the generated vector
//! kernel (IR statistics + source rendering) for a chosen stencil and
//! architecture width.
//!
//! ```text
//! cargo run --release --example codegen_inspect             # star r2, w=32
//! cargo run --release --example codegen_inspect -- cube 2 64
//! ```

use bricks_repro::codegen::{
    emit_scalar, emit_vector, generate, CodegenOptions, Dialect, LayoutKind, Strategy,
};
use bricks_repro::dsl::shape::StencilShape;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (shape, width) = match args.as_slice() {
        [] => (StencilShape::star(2), 32),
        [kind, radius, width] => {
            let r: u32 = radius.parse().expect("radius");
            let w: usize = width.parse().expect("width");
            let s = match kind.as_str() {
                "star" => StencilShape::star(r),
                "cube" => StencilShape::cube(r),
                other => panic!("unknown shape {other}"),
            };
            (s, w)
        }
        _ => panic!("usage: codegen_inspect [star|cube RADIUS WIDTH]"),
    };

    let stencil = shape.stencil();
    let bindings = stencil.default_bindings();

    println!("==== DSL (paper Fig. 1) ====\n{stencil}");

    println!("==== scalar kernels on bricks (paper Fig. 2) ====");
    for dialect in [Dialect::Cuda, Dialect::Hip, Dialect::Sycl] {
        println!("---- {} ----", dialect.name());
        println!(
            "{}",
            emit_scalar(&stencil, &bindings, LayoutKind::Brick, dialect)
        );
    }

    println!("==== vector code generation (width {width}) ====");
    for strategy in [Strategy::Gather, Strategy::Scatter] {
        let kernel = generate(
            &stencil,
            &bindings,
            LayoutKind::Brick,
            width,
            CodegenOptions {
                strategy,
                ..Default::default()
            },
        )
        .expect("codegen");
        let s = &kernel.stats;
        println!(
            "-- {strategy}: {} loads, {} shuffles, {} FMA, {} add, {} mul, \
             {} stores, {} regs/thread --",
            s.loads, s.shifts, s.fmas, s.adds, s.muls, s.stores, kernel.num_regs
        );
        if strategy == Strategy::Gather {
            let src = emit_vector(&kernel, Dialect::Cuda);
            let lines: Vec<&str> = src.lines().collect();
            for line in lines.iter().take(20) {
                println!("{line}");
            }
            if lines.len() > 20 {
                println!("... ({} more lines)", lines.len() - 20);
            }
        }
    }

    let auto = generate(
        &stencil,
        &bindings,
        LayoutKind::Brick,
        width,
        CodegenOptions::default(),
    )
    .expect("codegen");
    println!(
        "\nAuto strategy selected: {} (register budget {})",
        auto.strategy,
        CodegenOptions::default().register_budget
    );
}
