//! Reuse-distance analysis of the kernel address streams: computes the
//! LRU miss-ratio curve of each configuration's trace and reads off why
//! the three GPUs' L2 capacities (8 MB MI250X GCD, 40 MB A100, 208 MB
//! PVC stack) behave so differently in the study.
//!
//! ```text
//! cargo run --release --example reuse_analysis            # 13pt star
//! cargo run --release --example reuse_analysis -- cube 2
//! ```

use bricks_repro::codegen::{generate, CodegenOptions, LayoutKind};
use bricks_repro::core::{BrickDecomp, BrickDims, BrickNav, BrickOrdering};
use bricks_repro::dsl::shape::StencilShape;
use bricks_repro::gpu_sim::ReuseAnalyzer;
use bricks_repro::vm::{KernelSpec, ScalarKernel, TraceGeometry};
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let shape = match args.as_slice() {
        [] => StencilShape::star(2),
        [kind, radius] => {
            let r: u32 = radius.parse().expect("radius");
            match kind.as_str() {
                "star" => StencilShape::star(r),
                "cube" => StencilShape::cube(r),
                other => panic!("unknown shape {other}"),
            }
        }
        _ => panic!("usage: reuse_analysis [star|cube RADIUS]"),
    };
    let n = 128;
    let w = 32;
    let radius = shape.radius as usize;
    let st = shape.stencil();
    let b = st.default_bindings();

    let configs: Vec<(&str, KernelSpec, TraceGeometry)> = vec![
        (
            "array (scalar)",
            KernelSpec::Scalar(ScalarKernel::new(&st, &b, LayoutKind::Array, w).unwrap()),
            TraceGeometry::array((n, n, n), radius, BrickDims::for_simd_width(w)),
        ),
        (
            "array codegen",
            KernelSpec::Vector(
                generate(&st, &b, LayoutKind::Array, w, CodegenOptions::default()).unwrap(),
            ),
            TraceGeometry::array((n, n, n), radius, BrickDims::for_simd_width(w)),
        ),
        (
            "bricks codegen",
            KernelSpec::Vector(
                generate(&st, &b, LayoutKind::Brick, w, CodegenOptions::default()).unwrap(),
            ),
            TraceGeometry::brick(Arc::new(BrickNav::new(Arc::new(BrickDecomp::new(
                (n, n, n),
                BrickDims::for_simd_width(w),
                radius,
                BrickOrdering::Lexicographic,
            ))))),
        ),
    ];

    // MRC sampled at the study's three L2 capacities plus context points.
    let sizes: Vec<(usize, &str)> = vec![
        (512 * 1024, "0.5 MB"),
        (2 << 20, "2 MB"),
        (8 << 20, "8 MB (MI250X GCD L2)"),
        (40 << 20, "40 MB (A100 L2)"),
        (208 << 20, "208 MB (PVC L3)"),
    ];

    println!(
        "reuse-distance analysis: {shape} over {n}^3 (block-launch-order trace, 128 B lines)\n"
    );
    for (name, spec, geom) in configs {
        let mut analyzer = ReuseAnalyzer::new(128);
        for i in 0..geom.num_blocks() {
            spec.trace_block(&geom, i, &mut analyzer)
                .expect("verified kernel");
        }
        let p = analyzer.profile();
        println!(
            "{name}: {:.1} GB touched as {:.1} M line-accesses, footprint {:.1} MB, cold {:.1}%",
            p.total as f64 * 128.0 / 1e9,
            p.total as f64 / 1e6,
            p.footprint_bytes() as f64 / 1e6,
            100.0 * p.cold as f64 / p.total as f64
        );
        for &(size, label) in &sizes {
            println!(
                "    LRU {label:<22} miss ratio {:5.1}%",
                100.0 * p.miss_ratio(size)
            );
        }
        println!();
    }
    println!(
        "reading: the scalar array kernel re-touches every halo line once per tap, so its\n\
         curve needs far more capacity to flatten; the generated kernels' register reuse\n\
         removes those re-touches before the cache ever sees them (paper Fig. 4)."
    );
}
