//! High-order acoustic wave propagation on bricks — a reverse-time-
//! migration (RTM) proxy, the seismic-imaging workload that motivated
//! early fine-grained blocking work (Araya-Polo et al., cited in §2).
//!
//! Propagates the scalar wave equation `∂²u/∂t² = c² ∇²u` with the
//! paper's radius-4, 25-point star (8th-order Laplacian) and a leapfrog
//! scheme, keeping three time levels. A point source injects a Ricker
//! wavelet at the centre; the example verifies energy stays bounded (CFL
//! respected) and the wavefront arrives at a probe at the expected time.
//!
//! ```text
//! cargo run --release --example wave_rtm
//! ```

use bricks_repro::codegen::{generate, CodegenOptions, LayoutKind};
use bricks_repro::core::{BrickDims, BrickGrid};
use bricks_repro::dsl::{CoeffBindings, DenseGrid, GridRef, Stencil};
use bricks_repro::vm::run_vector_brick;
use std::sync::Arc;

/// 8th-order central-difference coefficients for the 1-D second
/// derivative (radius 4).
const D2_COEFFS: [f64; 5] = [
    -205.0 / 72.0,
    8.0 / 5.0,
    -1.0 / 5.0,
    8.0 / 315.0,
    -1.0 / 560.0,
];

fn main() {
    let n = 64usize;
    let c = 1.0; // wave speed
    let dt = 0.1; // with dx = 1: CFL cdt/dx = 0.1, well within 8th-order bound
    let c2dt2 = c * c * dt * dt;

    // The 25-point update stencil: u_next = 2u - u_prev + c²dt²·∇⁸u.
    // Here we generate the Laplacian part as a stencil and do the
    // leapfrog combination on the grids.
    let u = GridRef::new("u");
    let mut lap = D2_COEFFS[0] * 3.0 * u.center();
    for (d, &w) in D2_COEFFS.iter().enumerate().skip(1) {
        let d = d as i32;
        lap = lap
            + w * u.offset(d, 0, 0)
            + w * u.offset(-d, 0, 0)
            + w * u.offset(0, d, 0)
            + w * u.offset(0, -d, 0)
            + w * u.offset(0, 0, d)
            + w * u.offset(0, 0, -d);
    }
    let stencil = Stencil::assign("lap", lap).expect("linear");
    assert_eq!(stencil.points(), 25);
    assert_eq!(stencil.coefficient_classes(), 5);

    let bindings = CoeffBindings::new();
    let kernel = generate(
        &stencil,
        &bindings,
        LayoutKind::Brick,
        32,
        CodegenOptions::default(),
    )
    .expect("codegen");
    println!(
        "25pt Laplacian kernel: {} ({} regs/thread, {} strategy)",
        kernel.name, kernel.num_regs, kernel.strategy
    );

    // Three time levels on bricks.
    let dims = BrickDims::for_simd_width(32);
    let zero = DenseGrid::cubic(n, 4);
    let mut u_prev = BrickGrid::from_dense(&zero, dims);
    let mut u_cur = BrickGrid::from_dense(&zero, dims);
    let mut lap_grid =
        BrickGrid::with_metadata(Arc::clone(u_cur.decomp()), Arc::clone(u_cur.info()));

    let src = (n as i64 / 2, n as i64 / 2, n as i64 / 2);
    let probe = (n as i64 / 2 + 16, n as i64 / 2, n as i64 / 2);
    let expected_arrival = 16.0 / c; // distance / speed in time units
    let mut first_arrival: Option<f64> = None;

    let steps = 260;
    for step in 0..steps {
        // Ricker wavelet source
        let t = step as f64 * dt;
        let f0 = 0.25;
        let arg = std::f64::consts::PI * f0 * (t - 1.5 / f0);
        let ricker = (1.0 - 2.0 * arg * arg) * (-arg * arg).exp();

        run_vector_brick(&kernel, &u_cur, &mut lap_grid).expect("laplacian");
        // leapfrog update (element-wise on the interior)
        let lap_dense = lap_grid.to_dense();
        let cur_dense = u_cur.to_dense();
        let prev_dense = u_prev.to_dense();
        let mut next = DenseGrid::cubic(n, 4);
        for z in 0..n as i64 {
            for y in 0..n as i64 {
                for x in 0..n as i64 {
                    let v = 2.0 * cur_dense.get(x, y, z) - prev_dense.get(x, y, z)
                        + c2dt2 * lap_dense.get(x, y, z);
                    next.set(x, y, z, v);
                }
            }
        }
        next.set(src.0, src.1, src.2, next.get(src.0, src.1, src.2) + ricker);

        u_prev.copy_from_dense(&cur_dense);
        u_cur.copy_from_dense(&next);

        let p = next.get(probe.0, probe.1, probe.2).abs();
        if first_arrival.is_none() && p > 1e-3 {
            first_arrival = Some(t);
        }
        if step % 60 == 0 {
            let energy: f64 = next.interior_sum();
            println!("t = {t:6.2}: probe |u| = {p:.3e}, sum(u) = {energy:+.3e}");
            assert!(energy.is_finite(), "instability!");
        }
    }

    let arrival = first_arrival.expect("wavefront must reach the probe");
    println!(
        "\nwavefront arrival at probe: t = {arrival:.1} (ballistic estimate {expected_arrival:.1}, \
         wavelet onset adds ~{:.1})",
        1.5 / 0.25 - 2.0
    );
    // The Ricker wavelet ramps up around t ≈ 1.5/f0 - 2 ≈ 4; arrival must
    // be after the ballistic time and within the simulation.
    assert!(arrival >= expected_arrival * dt.min(1.0));
    assert!(arrival < steps as f64 * dt);
    println!("wave propagation OK: stable 8th-order leapfrog on bricks.");
}
