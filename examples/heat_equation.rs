//! Heat equation on bricks: the PDE workload the paper's introduction
//! motivates (stencils "used to solve partial differential equations
//! using the finite difference method").
//!
//! Solves `∂u/∂t = α ∇²u` on a cube with an explicit 7-point scheme,
//! ping-ponging two brick grids through the generated vector kernel, and
//! checks the numerical decay rate of a sine mode against the analytic
//! solution of the discrete operator.
//!
//! ```text
//! cargo run --release --example heat_equation
//! ```

use bricks_repro::codegen::{generate, CodegenOptions, LayoutKind};
use bricks_repro::core::{BrickDims, BrickGrid};
use bricks_repro::dsl::{CoeffBindings, DenseGrid, GridRef, Stencil};
use bricks_repro::vm::run_vector_brick;
use std::f64::consts::PI;
use std::sync::Arc;

fn main() {
    let n = 64usize;
    let alpha_dt = 0.1; // α·Δt/Δx², stable for the explicit scheme (< 1/6)

    // u_new = u + α·Δt·∇²u  as a single 7-point stencil:
    //   center 1 − 6·c, neighbours c.
    let u = GridRef::new("u");
    let c = alpha_dt;
    let expr = (1.0 - 6.0 * c) * u.center()
        + c * u.offset(1, 0, 0)
        + c * u.offset(-1, 0, 0)
        + c * u.offset(0, 1, 0)
        + c * u.offset(0, -1, 0)
        + c * u.offset(0, 0, 1)
        + c * u.offset(0, 0, -1);
    let stencil = Stencil::assign("u_new", expr).expect("linear");
    let bindings = CoeffBindings::new(); // weights are numeric already

    let kernel = generate(
        &stencil,
        &bindings,
        LayoutKind::Brick,
        32,
        CodegenOptions::default(),
    )
    .expect("codegen");
    println!(
        "heat kernel: {} ({} ops/brick, {} regs)",
        kernel.name,
        kernel.stats.total_instructions(),
        kernel.num_regs
    );

    // Initial condition: the (1,1,1) sine mode with periodic images
    // emulated by refreshing the halo each step from the interior (the
    // mode is periodic with the domain).
    let k = 2.0 * PI / n as f64;
    let mode =
        |x: i64, y: i64, z: i64| (k * x as f64).sin() * (k * y as f64).sin() * (k * z as f64).sin();
    let mut dense = DenseGrid::cubic(n, 1);
    dense.fill_with(|x, y, z| {
        mode(
            x.rem_euclid(n as i64),
            y.rem_euclid(n as i64),
            z.rem_euclid(n as i64),
        )
    });

    let dims = BrickDims::for_simd_width(32);
    let mut cur = BrickGrid::from_dense(&dense, dims);
    let mut next = BrickGrid::with_metadata(Arc::clone(cur.decomp()), Arc::clone(cur.info()));

    // Discrete decay factor of the mode under the 7-point operator:
    // λ = 1 − 2c·(3 − cos(kx) − cos(ky) − cos(kz)) per step.
    let lambda = 1.0 - 2.0 * c * (3.0 - 3.0 * (k).cos());
    println!("expected per-step decay factor λ = {lambda:.6}");

    let probe = (n as i64 / 4, n as i64 / 4, n as i64 / 4);
    let u0 = cur.get(probe.0, probe.1, probe.2);
    let steps = 20;
    for step in 0..steps {
        run_vector_brick(&kernel, &cur, &mut next).expect("step");
        std::mem::swap(&mut cur, &mut next);
        // refresh the periodic halo from the new interior
        let interior = cur.to_dense();
        let mut refreshed = DenseGrid::cubic(n, 1);
        refreshed.fill_with(|x, y, z| {
            interior.get(
                x.rem_euclid(n as i64),
                y.rem_euclid(n as i64),
                z.rem_euclid(n as i64),
            )
        });
        cur.copy_from_dense(&refreshed);
        if (step + 1) % 5 == 0 {
            let ut = cur.get(probe.0, probe.1, probe.2);
            let measured = (ut / u0).powf(1.0 / (step as f64 + 1.0));
            println!(
                "step {:3}: u(probe) = {ut:+.6}, measured decay/step = {measured:.6}",
                step + 1
            );
        }
    }

    let ut = cur.get(probe.0, probe.1, probe.2);
    let expected = u0 * lambda.powi(steps);
    let rel = ((ut - expected) / expected).abs();
    println!(
        "after {steps} steps: measured {ut:+.6e}, analytic {expected:+.6e} (rel err {rel:.2e})"
    );
    assert!(rel < 1e-9, "discrete decay must match the analytic factor");
    println!("heat equation OK: brick kernel reproduces the discrete dispersion relation.");
}
