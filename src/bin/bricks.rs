//! `bricks` — the umbrella CLI of the reproduction.
//!
//! ```text
//! bricks inspect  star 2 32          # DSL, analysis, generated kernels
//! bricks simulate cube 2 a100 cuda   # one simulated measurement
//! bricks tune     star 2 a100 cuda   # autotune brick shape/ordering
//! bricks reuse    star 2 32          # reuse-distance / MRC analysis
//! ```
//!
//! Each subcommand is a thin veneer over the library crates; the full
//! table/figure harness lives in the `experiments` binary.

use std::process::ExitCode;
use std::sync::Arc;

use bricks_repro::codegen::{
    emit_cpu_vector, emit_vector, generate, CodegenOptions, CpuIsa, Dialect, LayoutKind,
};
use bricks_repro::core::{BrickDecomp, BrickDims, BrickNav, BrickOrdering};
use bricks_repro::dsl::shape::StencilShape;
use bricks_repro::dsl::StencilAnalysis;
use bricks_repro::gpu_sim::{
    simulate_opts, GpuArch, ProgModel, ReuseAnalyzer, SimFidelity, SimOptions,
};
use bricks_repro::metrics::potential_speedup;
use bricks_repro::roofline::measure;
use bricks_repro::tuner::{autotune, TuningSpace};
use bricks_repro::vm::{KernelSpec, ScalarKernel, TraceGeometry};

const HELP: &str = "bricks — BrickLib reproduction toolkit

usage:
  bricks inspect  <star|cube> <radius> <width> [--temporal T]
                                                        kernel inspection
  bricks simulate <star|cube> <radius> <gpu> <model> [--fidelity exact|fast]
                                                        one measurement
  bricks tune     <star|cube> <radius> <gpu> <model>    autotune bricks
  bricks reuse    <star|cube> <radius> <width>          reuse distances
  bricks lint     [kernel.json] [--json]                static kernel analysis
  bricks lint     --native [--json]                     brick-safe memory proof
  bricks obs      <file> [--summary]                    inspect saved observability
  bricks exec     [--bench N]                           execution-backend report
  bricks prof sweep <spans.jsonl|PROF_sweep.json> [--json]
                                                        sweep self-profile report
  bricks prof sim <star|cube> <radius> <gpu> <model> [--n N]
                  [--fidelity exact|fast] [--json]      simulator introspection
  bricks prof diff <base.json> <new.json>               compare two BENCH_sim.json
  bricks prof gate <base.json> <new.json>               diff + fail on regression
  bricks prof history <file.jsonl> [--append BENCH_sim.json]
                                                        bench history timeline

  gpu   = a100 | mi250x | pvc
  model = cuda | hip | sycl

`bricks simulate --fidelity` picks the memory-simulation path: 'fast'
(default) replays one compiled stream per block equivalence class,
'exact' traces every block individually. Both are bit-identical by
contract; exact is the debugging oracle.

`bricks lint` runs the brick-lint static analyzer (verifier, footprint
proof, reuse and occupancy lints) over every paper stencil at SIMD
widths 16/32/64 in both layouts, or over one kernel saved as JSON.
Exits non-zero if any kernel has error-severity diagnostics; --json
emits machine-readable reports.

`bricks lint --native` runs the brick-safe prover standalone: the
compile-time memory-safety proof (obligations BS001-BS011) the native
SIMD backend relies on, re-discharged for every paper stencil at SIMD
widths 16/32/64 in both layouts and both codegen strategies, plus the
array-layout geometry premise at 256^3. Exits non-zero if any plan is
unprovable.

`bricks obs` summarizes observability artifacts written by the
experiments binary: trace.json (top spans by self-time), metrics.json
(counter/gauge/histogram summaries), manifest.json (run provenance) and
spans.jsonl with --summary (top spans by self-time plus per-span-name
aggregates). Set BRICK_LOG=info|debug|trace (with optional module=level
filters) for diagnostic logging in any subcommand.

`bricks prof` is the performance-attribution suite. 'sweep' renders a
sweep self-profile from a span capture or a saved PROF_sweep.json;
'sim' runs one memory simulation with full attribution (per-block-class
and per-SM-group traffic, wave timeline — rows sum bit-for-bit to the
totals); 'diff'/'gate' compare two bench documents — BENCH_sim.json
or BENCH_exec.json, recognised by content — with noise-aware tolerances
(gate exits non-zero on a >10% regression, the CI contract); 'history'
renders (or appends to) an append-only JSONL bench history keyed on each
run's git SHA.

`bricks exec` reports how the CPU execution backend resolves on this
host: detected SIMD features, the BRICK_EXEC default, and the backend
each mode (scalar|auto|avx2|neon) dispatches to. With --bench N it also
measures the star-7 cell at N^3 under the interpreter and the Auto
backend and prints the speedup (every backend is bit-identical to the
interpreter; see the differential suite in brick-vm).

For the paper's tables and figures use:
  cargo run -p experiments --release -- --all";

fn shape_of(kind: &str, radius: &str) -> Result<StencilShape, String> {
    let r: u32 = radius.parse().map_err(|e| format!("radius: {e}"))?;
    match kind {
        "star" => Ok(StencilShape::star(r)),
        "cube" => Ok(StencilShape::cube(r)),
        other => Err(format!("unknown shape {other} (star|cube)")),
    }
}

fn arch_of(name: &str) -> Result<GpuArch, String> {
    match name {
        "a100" => Ok(GpuArch::a100()),
        "mi250x" => Ok(GpuArch::mi250x_gcd()),
        "pvc" => Ok(GpuArch::pvc_stack()),
        other => Err(format!("unknown gpu {other} (a100|mi250x|pvc)")),
    }
}

fn model_of(name: &str) -> Result<ProgModel, String> {
    match name {
        "cuda" => Ok(ProgModel::Cuda),
        "hip" => Ok(ProgModel::Hip),
        "sycl" => Ok(ProgModel::Sycl),
        other => Err(format!("unknown model {other} (cuda|hip|sycl)")),
    }
}

fn inspect(shape: StencilShape, width: usize, temporal: u32) -> Result<(), String> {
    let st = shape.stencil();
    let b = st.default_bindings();
    let a = StencilAnalysis::of_shape(&shape);
    println!("{st}");
    println!(
        "points {}  classes {}  flops/point {}  theoretical AI {:.4} FLOP/B\n",
        a.points, a.classes, a.flops_per_point, a.theoretical_ai
    );
    let opts = if temporal > 1 {
        // fused kernels are inherently gather-scheduled
        CodegenOptions {
            temporal_degree: temporal,
            strategy: bricks_repro::codegen::Strategy::Gather,
            ..CodegenOptions::default()
        }
    } else {
        CodegenOptions::default()
    };
    let k = generate(&st, &b, LayoutKind::Brick, width, opts).map_err(|e| e.to_string())?;
    let s = &k.stats;
    if temporal > 1 {
        println!(
            "fused T={temporal}: stores stencil^{temporal}, flops/point {} \
             theoretical AI {:.4} FLOP/B",
            a.flops_per_point * temporal as u64,
            a.theoretical_ai * temporal as f64
        );
    }
    println!(
        "generated {} — strategy {}, {} regs/thread",
        k.name, k.strategy, k.num_regs
    );
    println!(
        "per brick: {} loads ({} B), {} shuffles, {} FMA, {} add, {} mul, {} stores\n",
        s.loads,
        k.loaded_bytes(),
        s.shifts,
        s.fmas,
        s.adds,
        s.muls,
        s.stores
    );
    println!("--- CUDA rendering (first 16 lines) ---");
    for line in emit_vector(&k, Dialect::Cuda).lines().take(16) {
        println!("{line}");
    }
    if width.is_multiple_of(8) {
        println!("\n--- AVX-512 rendering (first 10 lines) ---");
        for line in emit_cpu_vector(&k, CpuIsa::Avx512).lines().take(10) {
            println!("{line}");
        }
    }
    Ok(())
}

fn simulate_cmd(
    shape: StencilShape,
    arch: GpuArch,
    model: ProgModel,
    fidelity: SimFidelity,
) -> Result<(), String> {
    let n = 256;
    let st = shape.stencil();
    let b = st.default_bindings();
    let a = StencilAnalysis::of_shape(&shape);
    let w = arch.simd_width;
    let kernel = generate(&st, &b, LayoutKind::Brick, w, CodegenOptions::default())
        .map_err(|e| e.to_string())?;
    let decomp = Arc::new(BrickDecomp::new(
        (n, n, n),
        BrickDims::for_simd_width(w),
        shape.radius as usize,
        BrickOrdering::Lexicographic,
    ));
    let geom = TraceGeometry::brick(Arc::new(BrickNav::new(decomp)));
    let opts = SimOptions {
        fidelity,
        ..SimOptions::default()
    };
    let sim = simulate_opts(
        &KernelSpec::Vector(kernel),
        &geom,
        &arch,
        model,
        a.flops_per_point,
        &opts,
    )
    .ok_or_else(|| format!("{model} is not supported on {}", arch.name))?;
    let rl = measure(&arch, model).expect("support checked");
    let frac = rl.fraction(sim.gflops, sim.ai);
    let frac_ai = sim.ai / a.theoretical_ai;
    println!(
        "bricks codegen, {}^3 on {} / {model} ({fidelity} fidelity)",
        n, arch.name
    );
    println!(
        "  performance : {:8.0} GFLOP/s  ({:.0}% of roofline)",
        sim.gflops,
        frac * 100.0
    );
    println!(
        "  arith. int. : {:8.3} FLOP/B   ({:.0}% of theoretical)",
        sim.ai,
        frac_ai * 100.0
    );
    println!(
        "  data moved  : DRAM {:.2} GB | L2 {:.2} GB | L1 {:.2} GB",
        sim.mem.dram_bytes as f64 / 1e9,
        sim.mem.l2_bytes as f64 / 1e9,
        sim.mem.l1_bytes as f64 / 1e9
    );
    println!(
        "  kernel      : {:.3} ms, limiter {}, occupancy {:.0}%, {} regs/thread{}",
        sim.time_s * 1e3,
        sim.breakdown.limiter(),
        sim.occupancy.occupancy * 100.0,
        sim.regs_per_thread,
        if sim.spilled { " (spilled)" } else { "" }
    );
    println!(
        "  potential   : {:.1}x (speed-up headroom, Fig. 7 metric)",
        potential_speedup(frac_ai.min(1.0), frac.min(1.0))
    );
    Ok(())
}

fn tune_cmd(shape: StencilShape, arch: GpuArch, model: ProgModel) -> Result<(), String> {
    let n = 128;
    let group =
        autotune(&shape, &arch, model, n, &TuningSpace::default()).map_err(|e| e.to_string())?;
    println!(
        "autotuning {shape} on {} / {model} ({n}^3, {} evaluated / {} skipped)",
        arch.name, group.evaluated, group.skipped
    );
    if !group.skip_reasons.is_empty() {
        let reasons: Vec<String> = group
            .skip_reasons
            .iter()
            .map(|(kind, count)| format!("{kind} x{count}"))
            .collect();
        println!("  skipped     : {}", reasons.join(", "));
    }
    for (i, rec) in group.ranked.iter().take(6).enumerate() {
        println!(
            "  #{:<2} {:32} {:8.0} GFLOP/s  occ {:3.0}%, {} regs{}, {}",
            i + 1,
            rec.params.to_string(),
            rec.gflops,
            rec.occupancy * 100.0,
            rec.regs_per_thread,
            if rec.spilled { " (spilled)" } else { "" },
            rec.limiter
        );
    }
    println!(
        "  paper config: {:8.0} GFLOP/s ({})",
        group.baseline.gflops, group.baseline.params
    );
    println!(
        "  gain over paper 4x4xW gather default: {:.2}x (spread {:.2}x across the space)",
        group.gain_over_paper(),
        group.spread()
    );
    Ok(())
}

fn reuse_cmd(shape: StencilShape, width: usize) -> Result<(), String> {
    let n = 128;
    let st = shape.stencil();
    let b = st.default_bindings();
    let radius = shape.radius as usize;
    for (name, spec, geom) in [
        (
            "array (scalar)",
            KernelSpec::Scalar(
                ScalarKernel::new(&st, &b, LayoutKind::Array, width).map_err(|e| e.to_string())?,
            ),
            TraceGeometry::array((n, n, n), radius, BrickDims::for_simd_width(width)),
        ),
        (
            "bricks codegen",
            KernelSpec::Vector(
                generate(&st, &b, LayoutKind::Brick, width, CodegenOptions::default())
                    .map_err(|e| e.to_string())?,
            ),
            TraceGeometry::brick(Arc::new(BrickNav::new(Arc::new(BrickDecomp::new(
                (n, n, n),
                BrickDims::for_simd_width(width),
                radius,
                BrickOrdering::Lexicographic,
            ))))),
        ),
    ] {
        let mut an = ReuseAnalyzer::new(128);
        for i in 0..geom.num_blocks() {
            spec.trace_block(&geom, i, &mut an)
                .map_err(|e| e.to_string())?;
        }
        let p = an.profile();
        println!(
            "{name:15} footprint {:6.1} MB, cold {:5.1}%, miss@8MB {:5.1}%, miss@40MB {:5.1}%",
            p.footprint_bytes() as f64 / 1e6,
            100.0 * p.cold as f64 / p.total as f64,
            100.0 * p.miss_ratio(8 << 20),
            100.0 * p.miss_ratio(40 << 20)
        );
    }
    Ok(())
}

/// Run the static analyzer over the paper's kernel suite (six stencils ×
/// SIMD widths 16/32/64 × both layouts), or over a single kernel saved as
/// JSON. Errors (BL0xx) fail the command; warnings (BL1xx) are reported
/// but don't.
fn lint_cmd(target: Option<&str>, json: bool) -> Result<(), String> {
    use bricks_repro::codegen::VectorKernel;
    use bricks_repro::lint::{analyze, ExpectedStencil, LintOptions};

    let budgets: Vec<_> = GpuArch::all().iter().map(GpuArch::lint_budget).collect();
    let mut kernels = 0usize;
    let mut errors = 0usize;
    let mut warnings = 0usize;

    let mut lint_one = |k: &VectorKernel, expected: Option<ExpectedStencil>| {
        let opts = LintOptions {
            expected,
            budgets: budgets.clone(),
        };
        let a = analyze(k, &opts);
        kernels += 1;
        errors += a.report.error_count();
        warnings += a.report.warning_count();
        if json {
            println!("{}", a.report.to_json());
            return;
        }
        let status = if a.report.has_errors() {
            "FAIL"
        } else if a.report.warning_count() > 0 {
            "warn"
        } else {
            "ok"
        };
        println!(
            "{status:4} {:40} {:3} ops, {:2} regs, {} diagnostics",
            k.name,
            k.ops.len(),
            k.num_regs,
            a.report.diagnostics.len()
        );
        if !a.report.diagnostics.is_empty() {
            print!("{}", a.report.render(Some(k)));
        }
    };

    if let Some(path) = target {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let value = serde_json::parse(&text).map_err(|e| format!("{path}: not JSON: {e}"))?;
        let k: VectorKernel = serde_json::from_value(&value)
            .map_err(|e| format!("{path}: not a saved vector kernel: {e}"))?;
        // No declared stencil travels with a saved kernel; the footprint
        // pass still proves all output lanes compute the same stencil.
        lint_one(&k, None);
    } else {
        for shape in StencilShape::paper_suite() {
            let st = shape.stencil();
            let b = st.default_bindings();
            let expected = ExpectedStencil::resolve(&st, &b).map_err(|e| e.to_string())?;
            for layout in [LayoutKind::Brick, LayoutKind::Array] {
                for width in [16usize, 32, 64] {
                    let k = generate(&st, &b, layout, width, CodegenOptions::default())
                        .map_err(|e| format!("{shape} {layout} w{width}: {e}"))?;
                    lint_one(&k, Some(expected.clone()));
                }
            }
        }
    }
    if !json {
        println!("\n{kernels} kernels analyzed: {errors} errors, {warnings} warnings");
    }
    if errors > 0 {
        Err(format!("lint failed: {errors} error-severity diagnostics"))
    } else {
        Ok(())
    }
}

/// Run the brick-safe memory-safety prover standalone over the paper
/// suite × layouts × SIMD widths × codegen strategies. For each kernel
/// the plan is compiled (which embeds the proof), re-proved with
/// `verify_safety` (the standalone entry the sweep runner uses), and —
/// for array layouts — the per-run geometry premise is discharged at the
/// representative 256³ size. Any BSxxx diagnostic fails the command.
fn lint_native_cmd(json: bool) -> Result<(), String> {
    use bricks_repro::codegen::Strategy;
    use bricks_repro::vm::Plan;

    let mut kernels = 0usize;
    let mut failures = 0usize;
    for shape in StencilShape::paper_suite() {
        let st = shape.stencil();
        let b = st.default_bindings();
        for layout in [LayoutKind::Brick, LayoutKind::Array] {
            for width in [16usize, 32, 64] {
                for strategy in [Strategy::Gather, Strategy::Scatter] {
                    let opts = CodegenOptions {
                        strategy,
                        ..CodegenOptions::default()
                    };
                    let k = generate(&st, &b, layout, width, opts)
                        .map_err(|e| format!("{shape} {layout} w{width}: {e}"))?;
                    kernels += 1;
                    let verdict = Plan::compile(&k)
                        .and_then(|plan| {
                            let s = plan.verify_safety()?;
                            if layout == LayoutKind::Array {
                                let halo = shape.radius as usize;
                                plan.check_array_geometry(256, 256, 256, halo)?;
                            }
                            Ok(s)
                        })
                        .map_err(|e| e.to_string());
                    // k.name encodes layout and strategy but not width
                    let name = format!("{} w{width}", k.name);
                    match &verdict {
                        Ok(s) => {
                            if json {
                                println!(
                                    "{{\"kernel\":\"{name}\",\"safe\":true,\
                                     \"obligations\":{},\"fused\":{},\
                                     \"taps\":{},\"rows\":{}}}",
                                    s.obligations, s.fused, s.taps, s.rows
                                );
                            } else {
                                println!(
                                    "ok   {name:44} {:4} obligations, {:3} taps, {:2} rows{}",
                                    s.obligations,
                                    s.taps,
                                    s.rows,
                                    if s.fused { "" } else { " (unfused)" }
                                );
                            }
                        }
                        Err(e) => {
                            failures += 1;
                            if json {
                                println!(
                                    "{{\"kernel\":\"{name}\",\"safe\":false,\
                                     \"error\":\"{}\"}}",
                                    e.replace('\\', "\\\\").replace('"', "\\\"")
                                );
                            } else {
                                println!("FAIL {name:44} {e}");
                            }
                        }
                    }
                }
            }
        }
    }
    if !json {
        println!("\n{kernels} plans proved: {failures} unsafe");
    }
    if failures > 0 {
        Err(format!("lint --native failed: {failures} unprovable plans"))
    } else {
        Ok(())
    }
}

/// Summarize a saved observability artifact: a Chrome trace, a metrics
/// snapshot, or a run manifest (or a sweep JSON embedding one). The kind
/// is detected from the JSON shape, not the file name.
fn obs_cmd(path: &str) -> Result<(), String> {
    use bricks_repro::obs::trace::{parse_chrome_trace, render_span_stats, span_stats};
    use bricks_repro::obs::{metrics::render_snapshot, MetricsSnapshot, RunManifest};

    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let value = serde_json::parse(&text).map_err(|e| format!("{path}: not JSON: {e}"))?;

    if value.get("traceEvents").is_some() {
        let events = parse_chrome_trace(&text)?;
        let stats = span_stats(&events);
        println!(
            "{path}: Chrome trace, {} events, {} distinct spans\n",
            events.len(),
            stats.len()
        );
        print!("{}", render_span_stats(&stats, 20));
        return Ok(());
    }
    if value.get("counters").is_some() || value.get("histograms").is_some() {
        let snap: MetricsSnapshot =
            serde_json::from_value(&value).map_err(|e| format!("{path}: {e}"))?;
        println!("{path}: metrics snapshot\n");
        print!("{}", render_snapshot(&snap));
        return Ok(());
    }
    // a bare manifest, or a sweep with one embedded
    let manifest_value = if value.get("config_hash").is_some() {
        &value
    } else {
        value
            .get("manifest")
            .ok_or_else(|| format!("{path}: not a trace, metrics snapshot, or manifest"))?
    };
    let m: RunManifest =
        serde_json::from_value(manifest_value).map_err(|e| format!("{path}: {e}"))?;
    println!("{path}: run manifest");
    println!(
        "  git sha      : {}",
        m.git_sha.as_deref().unwrap_or("(not a checkout)")
    );
    println!("  config hash  : {:016x}", m.config_hash);
    println!("  started      : unix {}", m.started_unix);
    println!(
        "  wall time    : {:.2}s total, {} records, {:.3}s/record mean",
        m.wall_s,
        m.record_wall_s.len(),
        m.mean_record_s()
    );
    println!(
        "  observability: {} spans, {} metrics recorded",
        m.spans_recorded, m.metrics_recorded
    );
    if m.fidelity.is_some() || m.jobs.is_some() {
        println!(
            "  sweep        : fidelity {}, jobs {}",
            m.fidelity.as_deref().unwrap_or("-"),
            m.jobs.map_or("-".to_string(), |j| j.to_string())
        );
        println!(
            "  result cache : {} hits, {} misses, {} corrupt",
            m.cache_hits, m.cache_misses, m.cache_corrupt
        );
    }
    if let Some(slowest) = m
        .record_wall_s
        .iter()
        .cloned()
        .max_by(|a, b| a.total_cmp(b))
    {
        println!("  slowest rec  : {slowest:.3}s");
    }
    Ok(())
}

/// Per-span-name aggregates of a spans.jsonl capture: top spans by
/// self-time plus count/total/alloc per name.
fn obs_summary_cmd(path: &str) -> Result<(), String> {
    use bricks_repro::prof::{render_tree, ProfileTree};

    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let spans = bricks_repro::obs::trace::parse_spans_jsonl(&text)
        .map_err(|e| format!("{path}: not a spans.jsonl capture: {e}"))?;
    let tree = ProfileTree::build(&spans);

    let mut by_self: Vec<(String, u64, u64)> = Vec::new();
    tree.walk(&mut |n| by_self.push((n.name.clone(), n.self_ns, n.count)));
    by_self.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    println!("{path}: {} spans\n", spans.len());
    println!("top spans by self-time:");
    for (name, self_ns, count) in by_self.iter().take(15).filter(|(_, s, _)| *s > 0) {
        println!(
            "  {:<44} {:>12} ({} calls)",
            name,
            bricks_repro::prof::report::fmt_ns(*self_ns),
            count
        );
    }
    println!("\nmerged profile tree:");
    print!("{}", render_tree(&tree));
    Ok(())
}

/// Render a sweep self-profile from a span capture (spans.jsonl) or a
/// saved PROF_sweep.json.
fn prof_sweep_cmd(path: &str, json: bool) -> Result<(), String> {
    use bricks_repro::prof::{render_sweep_profile, SweepProfile};

    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let profile = match serde_json::parse(&text) {
        Ok(v) if v.get("schema").and_then(|s| s.as_str()).is_some() => {
            serde_json::from_value::<SweepProfile>(&v).map_err(|e| format!("{path}: {e}"))?
        }
        _ => {
            let spans = bricks_repro::obs::trace::parse_spans_jsonl(&text)
                .map_err(|e| format!("{path}: neither PROF_sweep.json nor spans.jsonl: {e}"))?;
            SweepProfile::from_spans(&spans)
        }
    };
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&profile).map_err(|e| e.to_string())?
        );
    } else {
        print!("{}", render_sweep_profile(&profile));
    }
    Ok(())
}

/// Run one memory simulation with full attribution and report it.
fn prof_sim_cmd(
    shape: StencilShape,
    arch: GpuArch,
    model: ProgModel,
    n: usize,
    fidelity: SimFidelity,
    json: bool,
) -> Result<(), String> {
    use bricks_repro::gpu_sim::{compile_only, simulate_memory_introspect};
    use bricks_repro::prof::render_introspection;

    let st = shape.stencil();
    let b = st.default_bindings();
    let w = arch.simd_width;
    let kernel = generate(&st, &b, LayoutKind::Brick, w, CodegenOptions::default())
        .map_err(|e| e.to_string())?;
    let spec = KernelSpec::Vector(kernel);
    let decomp = Arc::new(BrickDecomp::new(
        (n, n, n),
        BrickDims::for_simd_width(w),
        shape.radius as usize,
        BrickOrdering::Lexicographic,
    ));
    let geom = TraceGeometry::brick(Arc::new(BrickNav::new(decomp)));
    let (_, _, occ) = compile_only(&spec, &arch, model)
        .ok_or_else(|| format!("{model} is not supported on {}", arch.name))?;
    let opts = SimOptions {
        fidelity,
        ..SimOptions::default()
    };
    let (_, intro) = simulate_memory_introspect(&spec, &geom, &arch, occ.blocks_per_sm, &opts);
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&intro).map_err(|e| e.to_string())?
        );
    } else {
        println!(
            "bricks codegen, {n}^3 on {} / {model} ({fidelity} fidelity)\n",
            arch.name
        );
        print!("{}", render_introspection(&intro));
    }
    Ok(())
}

fn load_json(path: &str) -> Result<serde_json::Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    serde_json::parse(&text).map_err(|e| format!("{path}: not JSON: {e}"))
}

/// Report the host's execution-backend resolution: CPU features, the
/// `BRICK_EXEC` default, and the backend each [`ExecutionMode`] would
/// dispatch to; with `--bench N`, also a quick interpreter-vs-native
/// throughput measurement of the star-7 cell at `N`³.
fn exec_cmd(bench_n: Option<usize>) -> Result<(), String> {
    use bricks_repro::vm::{resolve_with, CpuFeatures, ExecutionMode};

    let features = CpuFeatures::detect();
    println!("cpu features: [{features}]");
    println!("BRICK_EXEC default: {}", ExecutionMode::from_env());
    for mode in ExecutionMode::ALL {
        let name = format!("{mode:<6}", mode = mode.to_string());
        match resolve_with(mode, features) {
            Ok(b) => println!("  {name} -> {b}"),
            Err(e) => println!("  {name} -> unavailable: {e}"),
        }
    }
    if let Some(n) = bench_n {
        if n == 0 || n % 64 != 0 {
            return Err(format!(
                "--bench size {n} must be a positive multiple of 64"
            ));
        }
        let bench =
            bricks_repro::experiments::bench_exec::run_bench_exec(n, ExecutionMode::Auto, None)?;
        println!(
            "star-7 at {n}^3: interpreter {:.1} Mpts/s, {} {:.1} Mpts/s — {:.2}x",
            bench.interpreter.points_per_s / 1e6,
            bench.native.backend,
            bench.native.points_per_s / 1e6,
            bench.speedup,
        );
    }
    Ok(())
}

/// Diff two bench documents (`BENCH_sim.json` or `BENCH_exec.json` —
/// the rule set is picked from the document itself); `gate` additionally
/// fails the command on any beyond-tolerance regression (the CI
/// contract).
fn prof_diff_cmd(base: &str, new: &str, gate: bool) -> Result<(), String> {
    use bricks_repro::prof::{diff_bench, render_diff, rules_for};

    let base_doc = load_json(base)?;
    let rules = rules_for(&base_doc);
    let deltas = diff_bench(&base_doc, &load_json(new)?, rules);
    print!("{}", render_diff(&deltas));
    if gate {
        bricks_repro::prof::gate(&deltas)?;
        println!("gate: ok");
    }
    Ok(())
}

/// Render a bench-history JSONL timeline, optionally appending a new
/// BENCH_sim.json record first.
fn prof_history_cmd(path: &str, append: Option<&str>) -> Result<(), String> {
    use bricks_repro::prof::{history_append, history_load, render_history};

    if let Some(bench) = append {
        history_append(std::path::Path::new(path), &load_json(bench)?)?;
        println!("appended {bench} to {path}");
    }
    let history = history_load(std::path::Path::new(path))?;
    print!("{}", render_history(&history));
    Ok(())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    match strs.as_slice() {
        ["inspect", kind, radius, width] => {
            let w: usize = width.parse().map_err(|e| format!("width: {e}"))?;
            inspect(shape_of(kind, radius)?, w, 1)
        }
        ["inspect", kind, radius, width, "--temporal", t] => {
            let w: usize = width.parse().map_err(|e| format!("width: {e}"))?;
            let t: u32 = t.parse().map_err(|e| format!("--temporal: {e}"))?;
            if !(1..=4).contains(&t) {
                return Err(format!("--temporal {t}: the 4x4 block caps T at 4"));
            }
            inspect(shape_of(kind, radius)?, w, t)
        }
        ["simulate", kind, radius, gpu, model] => simulate_cmd(
            shape_of(kind, radius)?,
            arch_of(gpu)?,
            model_of(model)?,
            SimFidelity::default(),
        ),
        ["simulate", kind, radius, gpu, model, "--fidelity", f] => simulate_cmd(
            shape_of(kind, radius)?,
            arch_of(gpu)?,
            model_of(model)?,
            f.parse()?,
        ),
        ["tune", kind, radius, gpu, model] => {
            tune_cmd(shape_of(kind, radius)?, arch_of(gpu)?, model_of(model)?)
        }
        ["reuse", kind, radius, width] => {
            let w: usize = width.parse().map_err(|e| format!("width: {e}"))?;
            reuse_cmd(shape_of(kind, radius)?, w)
        }
        ["lint"] => lint_cmd(None, false),
        ["lint", "--json"] => lint_cmd(None, true),
        ["lint", "--native"] => lint_native_cmd(false),
        ["lint", "--native", "--json"] => lint_native_cmd(true),
        ["lint", path] => lint_cmd(Some(path), false),
        ["lint", path, "--json"] => lint_cmd(Some(path), true),
        ["obs", path] => obs_cmd(path),
        ["obs", path, "--summary"] => obs_summary_cmd(path),
        ["prof", "sweep", path] => prof_sweep_cmd(path, false),
        ["prof", "sweep", path, "--json"] => prof_sweep_cmd(path, true),
        ["prof", "sim", kind, radius, gpu, model, rest @ ..] => {
            let mut n = 256usize;
            let mut fidelity = SimFidelity::default();
            let mut json = false;
            let mut it = rest.iter();
            while let Some(flag) = it.next() {
                match *flag {
                    "--n" => {
                        n = it
                            .next()
                            .ok_or("--n needs a value")?
                            .parse()
                            .map_err(|e| format!("--n: {e}"))?;
                    }
                    "--fidelity" => {
                        fidelity = it
                            .next()
                            .ok_or("--fidelity needs a value (exact|fast)")?
                            .parse()?;
                    }
                    "--json" => json = true,
                    other => return Err(format!("unknown prof sim flag {other}")),
                }
            }
            prof_sim_cmd(
                shape_of(kind, radius)?,
                arch_of(gpu)?,
                model_of(model)?,
                n,
                fidelity,
                json,
            )
        }
        ["exec"] => exec_cmd(None),
        ["exec", "--bench", n] => {
            let n: usize = n.parse().map_err(|e| format!("--bench size: {e}"))?;
            exec_cmd(Some(n))
        }
        ["prof", "diff", base, new] => prof_diff_cmd(base, new, false),
        ["prof", "gate", base, new] => prof_diff_cmd(base, new, true),
        ["prof", "history", path] => prof_history_cmd(path, None),
        ["prof", "history", path, "--append", bench] => prof_history_cmd(path, Some(bench)),
        [] | ["--help"] | ["-h"] | ["help"] => {
            println!("{HELP}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n\n{HELP}")),
    }
}

fn main() -> ExitCode {
    bricks_repro::obs::init();
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
