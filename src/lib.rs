//! # bricks-repro
//!
//! Umbrella crate for the Rust reproduction of *"Performance Portability
//! Evaluation of Blocked Stencil Computations on GPUs"* (SC-W 2023).
//!
//! Re-exports the public API of every workspace crate so examples and
//! integration tests can use a single dependency.

pub use brick_codegen as codegen;
pub use brick_core as core;
pub use brick_dsl as dsl;
pub use brick_lint as lint;
pub use brick_obs as obs;
pub use brick_prof as prof;
pub use brick_sweep as sweep_engine;
pub use brick_tuner as tuner;
pub use brick_vm as vm;
pub use experiments;
pub use gpu_sim;
pub use perf_portability as metrics;
pub use roofline;
